// The graph image store (src/store/): lossless round-trips, the LOADIMG
// serving path, and an adversarial parser.
//
// Three layers of guarantees under test:
//   1. differential round-trip — every array (CSR, ordered adjacency,
//      core numbers, merge tree) and every GraphFacts scalar survives
//      write+load bit-for-bit, and CST/CSM/MULTI wire replies from an
//      image-backed graph are byte-identical to the text-loaded graph;
//   2. fuzz — truncations at every interesting boundary and a bit flip
//      at *every byte position* yield a typed IoError, never a crash;
//   3. crafted corruption — images with a *valid* checksum but hostile
//      contents (wrong version, swapped endianness, out-of-range
//      adjacency, broken tree links) are rejected by the structural
//      pass.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "core/core_index.h"
#include "core/local_cst.h"
#include "gen/barabasi.h"
#include "gen/classic.h"
#include "graph/io.h"
#include "graph/ordering.h"
#include "serve/admission.h"
#include "serve/session.h"
#include "store/format.h"
#include "store/image.h"
#include "util/failpoint.h"

namespace locs::store {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// Recomputes and patches the whole-file checksum, so a test can corrupt
/// payload bytes and still get past the checksum gate — exercising the
/// structural validation layer behind it.
void FixChecksum(std::string* bytes) {
  constexpr size_t kField = offsetof(ImageHeader, checksum);
  const char zeros[sizeof(uint64_t)] = {};
  uint64_t fnv = Fnv1a64(bytes->data(), kField);
  fnv = Fnv1a64(zeros, sizeof(zeros), fnv);
  fnv = Fnv1a64(bytes->data() + kField + sizeof(uint64_t),
                bytes->size() - kField - sizeof(uint64_t), fnv);
  std::memcpy(bytes->data() + kField, &fnv, sizeof(fnv));
}

/// Absolute offset of a section's payload, read from the section table.
uint64_t SectionOffsetOf(const std::string& bytes, SectionId id) {
  for (uint32_t i = 0; i < kNumSections; ++i) {
    SectionEntry entry;
    std::memcpy(&entry, bytes.data() + sizeof(ImageHeader) +
                            i * sizeof(SectionEntry),
                sizeof(entry));
    if (entry.id == static_cast<uint32_t>(id)) return entry.offset;
  }
  ADD_FAILURE() << "section " << static_cast<uint32_t>(id)
                << " missing from table";
  return 0;
}

/// Absolute offset of a section's row in the section table itself.
uint64_t SectionEntryPos(const std::string& bytes, SectionId id) {
  for (uint32_t i = 0; i < kNumSections; ++i) {
    const uint64_t pos = sizeof(ImageHeader) + i * sizeof(SectionEntry);
    SectionEntry entry;
    std::memcpy(&entry, bytes.data() + pos, sizeof(entry));
    if (entry.id == static_cast<uint32_t>(id)) return pos;
  }
  ADD_FAILURE() << "section " << static_cast<uint32_t>(id)
                << " missing from table";
  return 0;
}

/// Writes `graph`'s image to a temp file and returns the path.
std::string CompileToTemp(const Graph& graph, const std::string& tag) {
  const std::string path = TempPath("store_" + tag + ".limg");
  IoError error;
  EXPECT_TRUE(CompileGraphImage(graph, path, &error)) << error.message;
  return path;
}

// ---------------------------------------------------------------------------
// Round-trip: every persisted array and scalar is bit-identical.

void ExpectLosslessRoundTrip(const Graph& graph, const std::string& tag) {
  SCOPED_TRACE(tag);
  const GraphFacts facts = GraphFacts::Compute(graph);
  const OrderedAdjacency ordered(graph);
  const CoreIndex index(graph);
  const std::string path = TempPath("store_rt_" + tag + ".limg");
  IoError error;
  ASSERT_TRUE(WriteGraphImage(graph, facts, ordered, index, path, &error))
      << error.message;

  const std::optional<LoadedImage> loaded = LoadGraphImage(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error.message;
  EXPECT_TRUE(error.ok());

  EXPECT_EQ(loaded->graph.offsets(), graph.offsets());
  EXPECT_EQ(loaded->graph.neighbors(), graph.neighbors());
  EXPECT_EQ(loaded->facts.num_vertices, facts.num_vertices);
  EXPECT_EQ(loaded->facts.num_edges, facts.num_edges);
  EXPECT_EQ(loaded->facts.max_degree, facts.max_degree);
  EXPECT_EQ(loaded->facts.connected, facts.connected);
  EXPECT_EQ(loaded->ordered.offsets(), ordered.offsets());
  EXPECT_EQ(loaded->ordered.neighbors(), ordered.neighbors());
  EXPECT_EQ(loaded->index.Degeneracy(), index.Degeneracy());
  EXPECT_EQ(loaded->index.NumTreeNodes(), index.NumTreeNodes());
  EXPECT_EQ(loaded->index.core_numbers(), index.core_numbers());
  EXPECT_EQ(loaded->index.node_level(), index.node_level());
  EXPECT_EQ(loaded->index.node_parent(), index.node_parent());
  EXPECT_EQ(loaded->index.node_first_child(), index.node_first_child());
  EXPECT_EQ(loaded->index.node_next_sibling(), index.node_next_sibling());
  EXPECT_EQ(loaded->index.node_vertex(), index.node_vertex());

  // Query-level equivalence on top of the array-level identity.
  const VertexId n = graph.NumVertices();
  for (VertexId v = 0; v < n; v += (n / 7) + 1) {
    const uint32_t k = index.CoreNumber(v);
    EXPECT_EQ(loaded->index.CstMembers(v, k), index.CstMembers(v, k));
    const Community a = loaded->index.Csm(v);
    const Community b = index.Csm(v);
    EXPECT_EQ(a.members, b.members);
    EXPECT_EQ(a.min_degree, b.min_degree);
  }
}

TEST(StoreRoundTripTest, StructuredGraphsSurviveBitForBit) {
  ExpectLosslessRoundTrip(gen::Barbell(6, 2), "barbell");
  ExpectLosslessRoundTrip(gen::Star(40), "star");
  ExpectLosslessRoundTrip(gen::PaperFigure1(), "fig1");
  ExpectLosslessRoundTrip(gen::Grid(9, 7), "grid");
}

TEST(StoreRoundTripTest, PowerLawGraphSurvivesBitForBit) {
  ExpectLosslessRoundTrip(gen::BarabasiAlbert(1500, 3, /*seed=*/7), "ba");
}

TEST(StoreRoundTripTest, DegenerateGraphsSurvive) {
  ExpectLosslessRoundTrip(Graph::FromCsr({0}, {}), "empty");
  ExpectLosslessRoundTrip(Graph::FromCsr({0, 0, 0}, {}), "isolated");
  ExpectLosslessRoundTrip(Graph::FromCsr({0, 1, 2}, {1, 0}), "one_edge");
}

TEST(StoreRoundTripTest, SniffRecognizesImagesByContentNotExtension) {
  const Graph graph = gen::Barbell(4, 0);
  const std::string odd_name = TempPath("store_sniff.dat");
  IoError error;
  ASSERT_TRUE(CompileGraphImage(graph, odd_name, &error)) << error.message;
  EXPECT_TRUE(SniffGraphImage(odd_name));

  const std::string text = TempPath("store_sniff.txt");
  ASSERT_TRUE(SaveEdgeList(graph, text));
  EXPECT_FALSE(SniffGraphImage(text));
  EXPECT_FALSE(SniffGraphImage(TempPath("store_sniff_missing")));
}

// ---------------------------------------------------------------------------
// Fuzz: truncation and exhaustive single-byte corruption.

TEST(StoreFuzzTest, TruncationAtEveryBoundaryIsTyped) {
  const std::string path = CompileToTemp(gen::Barbell(5, 1), "trunc_src");
  const std::string bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), sizeof(ImageHeader));

  const size_t cuts[] = {0,
                         1,
                         sizeof(ImageHeader) - 1,
                         sizeof(ImageHeader),
                         sizeof(ImageHeader) + sizeof(SectionEntry) - 3,
                         sizeof(ImageHeader) +
                             kNumSections * sizeof(SectionEntry),
                         bytes.size() / 2,
                         bytes.size() - 1};
  for (const size_t cut : cuts) {
    SCOPED_TRACE(cut);
    const std::string cut_path = TempPath("store_cut.limg");
    WriteFileBytes(cut_path, bytes.substr(0, cut));
    IoError error;
    EXPECT_FALSE(LoadGraphImage(cut_path, &error).has_value());
    EXPECT_NE(error.kind, IoErrorKind::kNone);
    EXPECT_FALSE(error.message.empty());
  }
}

TEST(StoreFuzzTest, BitFlipAtEveryPositionIsRejected) {
  // Small graph so the image stays a few hundred bytes: one load per
  // byte position. Every byte is covered by a header gate or the
  // whole-file checksum, so every flip must be caught.
  const std::string path = CompileToTemp(gen::Barbell(4, 0), "flip_src");
  const std::string bytes = ReadFileBytes(path);
  const std::string flip_path = TempPath("store_flip.limg");
  for (size_t pos = 0; pos < bytes.size(); ++pos) {
    std::string corrupt = bytes;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x40);
    WriteFileBytes(flip_path, corrupt);
    IoError error;
    ASSERT_FALSE(LoadGraphImage(flip_path, &error).has_value())
        << "flip at byte " << pos << " was accepted";
    ASSERT_NE(error.kind, IoErrorKind::kNone) << "flip at byte " << pos;
  }
}

TEST(StoreFuzzTest, GarbageAndEmptyFilesAreRejected) {
  const std::string path = TempPath("store_garbage");
  WriteFileBytes(path, std::string(4096, '\x5a'));
  IoError error;
  EXPECT_FALSE(LoadGraphImage(path, &error).has_value());
  EXPECT_EQ(error.kind, IoErrorKind::kParse);

  WriteFileBytes(path, "");
  EXPECT_FALSE(LoadGraphImage(path, &error).has_value());
  EXPECT_EQ(error.kind, IoErrorKind::kParse);

  EXPECT_FALSE(LoadGraphImage(TempPath("store_missing"), &error)
                   .has_value());
  EXPECT_EQ(error.kind, IoErrorKind::kOpen);
}

// ---------------------------------------------------------------------------
// Crafted corruption: valid checksum, hostile content.

TEST(StoreCraftedTest, UnsupportedVersionIsRejectedWithDetail) {
  const std::string path = CompileToTemp(gen::Barbell(4, 0), "ver_src");
  std::string bytes = ReadFileBytes(path);
  const uint32_t future = kImageVersion + 1;
  std::memcpy(bytes.data() + offsetof(ImageHeader, version), &future,
              sizeof(future));
  FixChecksum(&bytes);
  const std::string patched = TempPath("store_ver.limg");
  WriteFileBytes(patched, bytes);
  IoError error;
  EXPECT_FALSE(LoadGraphImage(patched, &error).has_value());
  EXPECT_EQ(error.kind, IoErrorKind::kParse);
  EXPECT_NE(error.message.find("version"), std::string::npos)
      << error.message;
}

TEST(StoreCraftedTest, OppositeEndiannessIsRejectedWithDetail) {
  const std::string path = CompileToTemp(gen::Barbell(4, 0), "end_src");
  std::string bytes = ReadFileBytes(path);
  std::memcpy(bytes.data() + offsetof(ImageHeader, endian),
              &kEndianTagSwapped, sizeof(kEndianTagSwapped));
  FixChecksum(&bytes);
  const std::string patched = TempPath("store_end.limg");
  WriteFileBytes(patched, bytes);
  IoError error;
  EXPECT_FALSE(LoadGraphImage(patched, &error).has_value());
  EXPECT_EQ(error.kind, IoErrorKind::kParse);
  EXPECT_NE(error.message.find("endianness"), std::string::npos)
      << error.message;
}

TEST(StoreCraftedTest, OutOfRangeAdjacencyFailsStructuralPass) {
  const std::string path = CompileToTemp(gen::Barbell(4, 0), "adj_src");
  std::string bytes = ReadFileBytes(path);
  const uint64_t off = SectionOffsetOf(bytes, SectionId::kNeighbors);
  const VertexId bogus = 1u << 30;  // far beyond any vertex id
  std::memcpy(bytes.data() + off, &bogus, sizeof(bogus));
  FixChecksum(&bytes);
  const std::string patched = TempPath("store_adj.limg");
  WriteFileBytes(patched, bytes);
  IoError error;
  EXPECT_FALSE(LoadGraphImage(patched, &error).has_value());
  EXPECT_EQ(error.kind, IoErrorKind::kParse);
  EXPECT_NE(error.message.find("structural validation"), std::string::npos)
      << error.message;
}

TEST(StoreCraftedTest, BrokenTreeLinksFailStructuralPass) {
  const std::string path = CompileToTemp(gen::Barbell(4, 0), "tree_src");
  std::string bytes = ReadFileBytes(path);
  // Point leaf 0's parent at itself: a cycle a naive tree walk would
  // never exit. The forest validation must reject it.
  const uint64_t off = SectionOffsetOf(bytes, SectionId::kNodeParent);
  const uint32_t self = 0;
  std::memcpy(bytes.data() + off, &self, sizeof(self));
  FixChecksum(&bytes);
  const std::string patched = TempPath("store_tree.limg");
  WriteFileBytes(patched, bytes);
  IoError error;
  EXPECT_FALSE(LoadGraphImage(patched, &error).has_value());
  EXPECT_EQ(error.kind, IoErrorKind::kParse);
  EXPECT_NE(error.message.find("structural validation"), std::string::npos)
      << error.message;
}

TEST(StoreCraftedTest, OverflowingHalfEdgeCountIsRejected) {
  const std::string path = CompileToTemp(gen::Barbell(4, 0), "ovf_src");
  std::string bytes = ReadFileBytes(path);
  // half = 2^62 wraps `half * sizeof(VertexId)` to 0 mod 2^64, so paired
  // with zero-length neighbor sections it slips past a multiply-based
  // length cross-check — after which the `i < half` validation loops
  // would index 2^62 elements past the mapping. The reader must reject
  // the counts, not trust the wrapped product.
  const uint64_t huge = uint64_t{1} << 62;
  const uint64_t meta_off = SectionOffsetOf(bytes, SectionId::kMeta);
  std::memcpy(bytes.data() + meta_off + offsetof(ImageMeta, num_half_edges),
              &huge, sizeof(huge));
  const uint64_t zero = 0;
  for (const SectionId id :
       {SectionId::kNeighbors, SectionId::kOrderedNeighbors}) {
    std::memcpy(bytes.data() + SectionEntryPos(bytes, id) +
                    offsetof(SectionEntry, length),
                &zero, sizeof(zero));
  }
  // Make offsets[n] agree with the huge count too, so a reader without
  // the overflow-safe cross-check would sail into the CSR loop and read
  // out of bounds (ASan-visible) instead of stopping at the coverage
  // check.
  uint64_t n = 0;
  std::memcpy(&n, bytes.data() + meta_off + offsetof(ImageMeta, num_vertices),
              sizeof(n));
  std::memcpy(bytes.data() + SectionOffsetOf(bytes, SectionId::kOffsets) +
                  n * sizeof(uint64_t),
              &huge, sizeof(huge));
  FixChecksum(&bytes);
  const std::string patched = TempPath("store_ovf.limg");
  WriteFileBytes(patched, bytes);
  IoError error;
  EXPECT_FALSE(LoadGraphImage(patched, &error).has_value());
  EXPECT_EQ(error.kind, IoErrorKind::kParse);
  EXPECT_NE(error.message.find("disagrees with the meta counts"),
            std::string::npos)
      << error.message;
}

TEST(StoreCraftedTest, NonMonotoneTreeLevelsFailStructuralPass) {
  const std::string path = CompileToTemp(gen::Barbell(4, 0), "lvl_src");
  std::string bytes = ReadFileBytes(path);
  // Raise the level of leaf 0's parent above the leaf's own level. Leaf
  // levels still match the core numbers and every link still forms a
  // forest, but AncestorAtLevel's upward walk would now stop at the
  // wrong node — the monotone-level check must reject the image.
  const uint64_t parent_off =
      SectionOffsetOf(bytes, SectionId::kNodeParent);
  uint32_t parent0 = 0;
  std::memcpy(&parent0, bytes.data() + parent_off, sizeof(parent0));
  ASSERT_NE(parent0, CoreIndex::kNil);
  const uint64_t level_off = SectionOffsetOf(bytes, SectionId::kNodeLevel);
  const uint32_t bogus = 1000;
  std::memcpy(bytes.data() + level_off + parent0 * sizeof(uint32_t),
              &bogus, sizeof(bogus));
  FixChecksum(&bytes);
  const std::string patched = TempPath("store_lvl.limg");
  WriteFileBytes(patched, bytes);
  IoError error;
  EXPECT_FALSE(LoadGraphImage(patched, &error).has_value());
  EXPECT_EQ(error.kind, IoErrorKind::kParse);
  EXPECT_NE(error.message.find("structural validation"), std::string::npos)
      << error.message;
}

TEST(StoreCraftedTest, LeafWithChildrenFailsStructuralPass) {
  const std::string path = CompileToTemp(gen::Barbell(4, 0), "leaf_src");
  std::string bytes = ReadFileBytes(path);
  // Give leaf 0 a "child": point first_child[0] at leaf 1. Leaves must
  // be childless or SubtreeLeaves would return members the merge never
  // produced.
  const uint64_t fc_off =
      SectionOffsetOf(bytes, SectionId::kNodeFirstChild);
  const uint32_t child = 1;
  std::memcpy(bytes.data() + fc_off, &child, sizeof(child));
  FixChecksum(&bytes);
  const std::string patched = TempPath("store_leaf.limg");
  WriteFileBytes(patched, bytes);
  IoError error;
  EXPECT_FALSE(LoadGraphImage(patched, &error).has_value());
  EXPECT_EQ(error.kind, IoErrorKind::kParse);
  EXPECT_NE(error.message.find("structural validation"), std::string::npos)
      << error.message;
}

TEST(StoreCraftedTest, CoreNumberTamperingFailsStructuralPass) {
  const std::string path = CompileToTemp(gen::Barbell(4, 0), "core_src");
  std::string bytes = ReadFileBytes(path);
  const uint64_t off = SectionOffsetOf(bytes, SectionId::kCoreNumbers);
  uint32_t core0 = 0;
  std::memcpy(&core0, bytes.data() + off, sizeof(core0));
  ++core0;  // now disagrees with the leaf's merge-tree level
  std::memcpy(bytes.data() + off, &core0, sizeof(core0));
  FixChecksum(&bytes);
  const std::string patched = TempPath("store_core.limg");
  WriteFileBytes(patched, bytes);
  IoError error;
  EXPECT_FALSE(LoadGraphImage(patched, &error).has_value());
  EXPECT_EQ(error.kind, IoErrorKind::kParse);
}

// ---------------------------------------------------------------------------
// Failpoints: the chaos hooks fire and map to typed open errors.

TEST(StoreFailpointTest, InjectedOpenFaultIsTyped) {
  const std::string path = CompileToTemp(gen::Barbell(4, 0), "fp_open");
  failpoint::ScopedFailpoint fp("serve.store.image_open_error");
  IoError error;
  EXPECT_FALSE(LoadGraphImage(path, &error).has_value());
  EXPECT_EQ(error.kind, IoErrorKind::kOpen);
  EXPECT_NE(error.message.find("injected image open fault"),
            std::string::npos)
      << error.message;
}

TEST(StoreFailpointTest, InjectedMmapFaultIsTyped) {
  const std::string path = CompileToTemp(gen::Barbell(4, 0), "fp_mmap");
  failpoint::ScopedFailpoint fp("serve.store.image_mmap_error");
  IoError error;
  EXPECT_FALSE(LoadGraphImage(path, &error).has_value());
  EXPECT_EQ(error.kind, IoErrorKind::kOpen);
  EXPECT_NE(error.message.find("cannot mmap"), std::string::npos)
      << error.message;
}

// ---------------------------------------------------------------------------
// Wire-level differential: image-backed and text-backed graphs produce
// byte-identical query replies (replies are deterministic by design —
// timing lives only in STATS).

/// Runs one scripted locsd session over file-backed fds (the
/// serve_session_test harness, trimmed to what the differential needs).
std::vector<std::string> RunScript(const std::vector<std::string>& script,
                                   const std::string& tag) {
  serve::GraphRegistry registry(4);
  serve::AdmissionController admission{serve::AdmissionController::Options{}};
  serve::ServerMetrics metrics;
  const serve::SessionOptions options;

  const std::string in_path = TempPath("store_wire_in_" + tag);
  const std::string out_path = TempPath("store_wire_out_" + tag);
  {
    std::ofstream out(in_path, std::ios::trunc);
    for (const std::string& line : script) out << line << "\n";
  }
  const int in_fd = ::open(in_path.c_str(), O_RDONLY);
  const int out_fd =
      ::open(out_path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0600);
  EXPECT_GE(in_fd, 0);
  EXPECT_GE(out_fd, 0);
  {
    serve::FdTransport transport(in_fd, out_fd);
    serve::Session session(transport, registry, admission, metrics,
                           options);
    session.Run();
  }
  ::close(in_fd);
  ::close(out_fd);

  std::vector<std::string> replies;
  std::ifstream in(out_path);
  std::string line;
  while (std::getline(in, line)) replies.push_back(line);
  return replies;
}

TEST(StoreWireTest, ImageAndTextBackedRepliesAreByteIdentical) {
  const std::string text = TempPath("store_wire.txt");
  ASSERT_TRUE(SaveEdgeList(gen::BarabasiAlbert(600, 3, /*seed=*/11), text));
  // Compile from the text file's own view of the graph (LoadEdgeList
  // compacts ids in first-seen order) — exactly what `locs_cli compile
  // <edgelist>` produces, so LOAD-of-text and LOADIMG see the same
  // labeled graph.
  const std::optional<Graph> reloaded = LoadEdgeList(text);
  ASSERT_TRUE(reloaded.has_value());
  const std::string image = CompileToTemp(*reloaded, "wire");

  const std::vector<std::string> queries = {
      "CST g 0 3",         "CST g 17 2",  "CST g 5 100",
      "CSM g 0",           "CSM g 599",   "MULTI g 3 0 1 2",
      "MULTI g max 10 20", "CST g 4 1 trace=1",
  };
  std::vector<std::string> text_script = {"LOAD g " + text};
  std::vector<std::string> image_script = {"LOADIMG g " + image};
  std::vector<std::string> sniff_script = {"LOAD g " + image};
  for (const std::string& q : queries) {
    text_script.push_back(q);
    image_script.push_back(q);
    sniff_script.push_back(q);
  }
  text_script.push_back("QUIT");
  image_script.push_back("QUIT");
  sniff_script.push_back("QUIT");

  const auto text_replies = RunScript(text_script, "text");
  const auto image_replies = RunScript(image_script, "image");
  const auto sniff_replies = RunScript(sniff_script, "sniff");
  // One reply per line: the LOAD ack, the queries, and the QUIT ack.
  ASSERT_EQ(text_replies.size(), queries.size() + 2);
  ASSERT_EQ(image_replies.size(), queries.size() + 2);
  ASSERT_EQ(sniff_replies.size(), queries.size() + 2);

  // The LOAD acks differ by design (source=text vs source=image and
  // timing); every query reply after them must match byte-for-byte.
  EXPECT_NE(text_replies[0].find(" source=text"), std::string::npos)
      << text_replies[0];
  EXPECT_NE(image_replies[0].find(" source=image"), std::string::npos)
      << image_replies[0];
  EXPECT_NE(sniff_replies[0].find(" source=image"), std::string::npos)
      << sniff_replies[0];
  for (size_t i = 1; i < text_replies.size(); ++i) {
    EXPECT_EQ(text_replies[i], image_replies[i]) << "query " << i;
    EXPECT_EQ(text_replies[i], sniff_replies[i]) << "query " << i;
  }
}

TEST(StoreWireTest, LoadImgOnNonImageIsTypedWireError) {
  const Graph graph = gen::Barbell(4, 0);
  const std::string text = TempPath("store_wire_bad.txt");
  ASSERT_TRUE(SaveEdgeList(graph, text));
  const auto replies =
      RunScript({"LOADIMG g " + text, "PING", "QUIT"}, "bad");
  ASSERT_EQ(replies.size(), 3u);
  EXPECT_EQ(replies[0].rfind("ERR io ", 0), 0u) << replies[0];
  EXPECT_NE(replies[0].find("not a graph image"), std::string::npos)
      << replies[0];
  EXPECT_EQ(replies[1], "OK pong");
}

}  // namespace
}  // namespace locs::store
