// Adversarial graph structures for the local solvers: shapes engineered
// to stress tie-breaking, fallback paths, budget logic, and the epoch
// machinery — beyond what uniform random graphs exercise.

#include <gtest/gtest.h>

#include <limits>

#include "core/global.h"
#include "core/local_csm.h"
#include "core/local_cst.h"
#include "gen/classic.h"
#include "graph/builder.h"
#include "graph/subgraph.h"
#include "test_util.h"

namespace locs {
namespace {

using testing::ToSet;

/// Ring of cliques: `count` K_size cliques, consecutive cliques joined by
/// a single edge. Dense pockets with weak links — the structure minimum
/// degree is designed for.
Graph RingOfCliques(VertexId count, VertexId size) {
  GraphBuilder builder(count * size);
  for (VertexId c = 0; c < count; ++c) {
    const VertexId base = c * size;
    for (VertexId i = 0; i < size; ++i) {
      for (VertexId j = i + 1; j < size; ++j) {
        builder.AddEdge(base + i, base + j);
      }
    }
    const VertexId next = ((c + 1) % count) * size;
    builder.AddEdge(base + size - 1, next);
  }
  return builder.Build();
}

/// A "lollipop": K_size clique with a path of `tail` vertices hanging off.
Graph Lollipop(VertexId size, VertexId tail) {
  GraphBuilder builder(size + tail);
  for (VertexId i = 0; i < size; ++i) {
    for (VertexId j = i + 1; j < size; ++j) builder.AddEdge(i, j);
  }
  VertexId prev = size - 1;
  for (VertexId t = 0; t < tail; ++t) {
    builder.AddEdge(prev, size + t);
    prev = size + t;
  }
  return builder.Build();
}

/// Two K_k cliques sharing exactly `overlap` vertices.
Graph OverlappingCliques(VertexId k, VertexId overlap) {
  const VertexId n = 2 * k - overlap;
  GraphBuilder builder(n);
  for (VertexId i = 0; i < k; ++i) {
    for (VertexId j = i + 1; j < k; ++j) builder.AddEdge(i, j);
  }
  for (VertexId i = k - overlap; i < n; ++i) {
    for (VertexId j = i + 1; j < n; ++j) builder.AddEdge(i, j);
  }
  return builder.Build();
}

class AdversarialTest : public ::testing::TestWithParam<Strategy> {
 protected:
  SearchResult SolveCst(const Graph& g, VertexId v0, uint32_t k) {
    const GraphFacts facts = GraphFacts::Compute(g);
    const OrderedAdjacency ordered(g);
    LocalCstSolver solver(g, &ordered, &facts);
    CstOptions options;
    options.strategy = GetParam();
    return solver.Solve(v0, k, options);
  }
};

TEST_P(AdversarialTest, RingOfCliquesStaysLocal) {
  const VertexId size = 6;
  Graph g = RingOfCliques(10, size);
  for (VertexId c = 0; c < 10; ++c) {
    const VertexId v0 = c * size + 2;  // interior clique vertex
    const auto result = SolveCst(g, v0, size - 1);
    ASSERT_TRUE(result.has_value()) << "clique " << c;
    EXPECT_TRUE(IsValidCommunity(g, result->members, v0, size - 1));
    if (GetParam() != Strategy::kLG) {
      // naive and li stop at exactly the query vertex's own clique. lg can
      // legitimately cascade through the bridge endpoints (the selection
      // hardness of the paper's Example 8) and return the full ring.
      EXPECT_EQ(result->members.size(), size);
    }
  }
}

TEST_P(AdversarialTest, RingOfCliquesFullRingAtK2) {
  Graph g = RingOfCliques(6, 4);
  const auto result = SolveCst(g, 0, 2);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(IsValidCommunity(g, result->members, 0, 2));
}

TEST_P(AdversarialTest, LollipopTailQueries) {
  Graph g = Lollipop(8, 20);
  // Tail vertices have m* = 1: CST(2) must fail from the tail tip but the
  // clique answers for k up to 7 from inside.
  EXPECT_FALSE(SolveCst(g, g.NumVertices() - 1, 2).has_value());
  for (uint32_t k = 1; k <= 7; ++k) {
    const auto result = SolveCst(g, 0, k);
    ASSERT_TRUE(result.has_value()) << "k=" << k;
    EXPECT_TRUE(IsValidCommunity(g, result->members, 0, k));
  }
  EXPECT_FALSE(SolveCst(g, 0, 8).has_value());
}

TEST_P(AdversarialTest, LollipopJunctionVertex) {
  // The junction vertex (clique member holding the tail) has the highest
  // global degree yet the same m* as its clique — high degree must not
  // mislead the search.
  Graph g = Lollipop(8, 20);
  const VertexId junction = 7;
  EXPECT_EQ(GlobalCsm(g, junction)->min_degree, 7u);
  const auto result = SolveCst(g, junction, 7);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(ToSet(result->members), ToSet({0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST_P(AdversarialTest, OverlappingCliquesSharedVertices) {
  Graph g = OverlappingCliques(8, 3);
  // Shared vertices have inflated degree; m* for every vertex is 7 (its
  // own K8), and CST(7) from a shared vertex can answer with either K8.
  for (VertexId v0 = 0; v0 < g.NumVertices(); ++v0) {
    const auto result = SolveCst(g, v0, 7);
    ASSERT_TRUE(result.has_value()) << "v0=" << v0;
    EXPECT_TRUE(IsValidCommunity(g, result->members, v0, 7));
  }
  EXPECT_FALSE(SolveCst(g, 5, 10).has_value());
}

TEST_P(AdversarialTest, DeepStarOfPaths) {
  // Hub with many long path arms: every CST(2) query must fail fast
  // (no cycle anywhere), exercising exhaustive candidate drain.
  GraphBuilder builder(1 + 10 * 20);
  for (VertexId arm = 0; arm < 10; ++arm) {
    VertexId prev = 0;
    for (VertexId i = 0; i < 20; ++i) {
      const VertexId v = 1 + arm * 20 + i;
      builder.AddEdge(prev, v);
      prev = v;
    }
  }
  Graph g = builder.Build();
  EXPECT_FALSE(SolveCst(g, 0, 2).has_value());
  EXPECT_FALSE(SolveCst(g, 15, 2).has_value());
}

TEST_P(AdversarialTest, CompleteBipartiteNoHighCore) {
  // K_{a,b}: m* = min(a, b) for every vertex; no triangle exists, so
  // small answers are impossible — answers must span both sides.
  Graph g = gen::CompleteBipartite(4, 9);
  for (VertexId v0 : {0u, 5u}) {
    const auto result = SolveCst(g, v0, 4);
    ASSERT_TRUE(result.has_value());
    EXPECT_TRUE(IsValidCommunity(g, result->members, v0, 4));
    EXPECT_FALSE(SolveCst(g, v0, 5).has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, AdversarialTest,
                         ::testing::Values(Strategy::kNaive, Strategy::kLG,
                                           Strategy::kLI),
                         [](const auto& info) {
                           return std::string(StrategyName(info.param));
                         });

TEST(AdversarialCsmTest, RingOfCliquesAllRules) {
  Graph g = RingOfCliques(8, 5);
  const GraphFacts facts = GraphFacts::Compute(g);
  const OrderedAdjacency ordered(g);
  LocalCsmSolver solver(g, &ordered, &facts);
  for (VertexId v0 = 0; v0 < g.NumVertices(); v0 += 3) {
    const uint32_t expect = GlobalCsm(g, v0)->min_degree;
    for (CsmCandidateRule rule :
         {CsmCandidateRule::kFromNaive, CsmCandidateRule::kFromVisited}) {
      CsmOptions options;
      options.candidate_rule = rule;
      options.gamma = -std::numeric_limits<double>::infinity();
      EXPECT_EQ(solver.Solve(v0, options)->min_degree, expect)
          << "v0=" << v0;
    }
  }
}

TEST(AdversarialCsmTest, LongPathBudgetTermination) {
  // On a pure path, δ(H) never exceeds 1; with γ = 0 the Corollary-1
  // budget must stop the expansion long before it crawls the whole path.
  Graph g = gen::Path(5000);
  const GraphFacts facts = GraphFacts::Compute(g);
  LocalCsmSolver solver(g, nullptr, &facts);
  CsmOptions options;
  options.gamma = 0.0;
  options.candidate_rule = CsmCandidateRule::kFromNaive;
  QueryStats stats;
  const Community best = *solver.Solve(2500, options, &stats);
  EXPECT_EQ(best.min_degree, 1u);
  EXPECT_TRUE(IsValidCommunity(g, best.members, 2500, 1));
}

TEST(AdversarialCsmTest, HubVertexInSparseGalaxy) {
  // A hub connected to many degree-1 satellites plus one triangle: the
  // best community for the hub is the triangle (m* = 2), not the star.
  GraphBuilder builder(50);
  for (VertexId v = 3; v < 50; ++v) builder.AddEdge(0, v);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 2);
  builder.AddEdge(1, 2);
  Graph g = builder.Build();
  const GraphFacts facts = GraphFacts::Compute(g);
  LocalCsmSolver solver(g, nullptr, &facts);
  const Community best = *solver.Solve(0);
  EXPECT_EQ(best.min_degree, 2u);
  EXPECT_EQ(ToSet(best.members), ToSet({0, 1, 2}));
}

}  // namespace
}  // namespace locs
