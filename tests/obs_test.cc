// Unit tests for the telemetry layer (src/obs/): phase bookkeeping,
// the tracker's span semantics, the null/aggregate/trace sinks, and the
// shared JSON primitives the trace sink renders with.

#include <chrono>
#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/recorder.h"
#include "obs/telemetry.h"
#include "obs/trace_sink.h"
#include "util/json.h"

namespace locs::obs {
namespace {

TEST(PhaseTest, NamesAreTheFormatContract) {
  // These strings appear in wire replies, STATS keys, and JSONL traces;
  // changing one is a format break, which this test makes loud.
  EXPECT_EQ(PhaseName(Phase::kAdmission), "admission");
  EXPECT_EQ(PhaseName(Phase::kExpansion), "expansion");
  EXPECT_EQ(PhaseName(Phase::kCandidates), "candidates");
  EXPECT_EQ(PhaseName(Phase::kCoreDecomposition), "core");
  EXPECT_EQ(PhaseName(Phase::kConnectivity), "connectivity");
}

TEST(PhaseStatsTest, WorkAndMerge) {
  PhaseStats a;
  a.vertices_visited = 3;
  a.edges_scanned = 10;
  a.candidates_generated = 4;
  EXPECT_EQ(a.Work(), 13u);

  PhaseStats b;
  b.duration_ns = 7;
  b.entered = 2;
  b.vertices_visited = 1;
  b.candidates_rejected = 5;
  b.budget_spent = 6;
  a.Merge(b);
  EXPECT_EQ(a.duration_ns, 7u);
  EXPECT_EQ(a.entered, 2u);
  EXPECT_EQ(a.vertices_visited, 4u);
  EXPECT_EQ(a.edges_scanned, 10u);
  EXPECT_EQ(a.candidates_generated, 4u);
  EXPECT_EQ(a.candidates_rejected, 5u);
  EXPECT_EQ(a.budget_spent, 6u);
}

TEST(QueryTelemetryTest, TotalsSumAcrossPhases) {
  QueryTelemetry t;
  t[Phase::kExpansion].vertices_visited = 5;
  t[Phase::kExpansion].edges_scanned = 20;
  t[Phase::kCoreDecomposition].vertices_visited = 7;
  t[Phase::kConnectivity].edges_scanned = 2;
  t[Phase::kAdmission].duration_ns = 11;
  t[Phase::kCandidates].duration_ns = 31;
  EXPECT_EQ(t.TotalVisited(), 12u);
  EXPECT_EQ(t.TotalScanned(), 22u);
  EXPECT_EQ(t.TotalWork(), 34u);
  EXPECT_EQ(t.TotalDurationNs(), 42u);
}

TEST(QueryTelemetryTest, MergeAndReset) {
  QueryTelemetry a;
  a[Phase::kExpansion].vertices_visited = 1;
  a.answer_size = 4;
  QueryTelemetry b;
  b[Phase::kExpansion].vertices_visited = 2;
  b[Phase::kAdmission].entered = 1;
  b.used_global_fallback = true;
  b.answer_size = 6;
  a.Merge(b);
  EXPECT_EQ(a[Phase::kExpansion].vertices_visited, 3u);
  EXPECT_EQ(a[Phase::kAdmission].entered, 1u);
  EXPECT_TRUE(a.used_global_fallback);
  EXPECT_EQ(a.answer_size, 10u);

  a.Reset();
  EXPECT_EQ(a.TotalWork(), 0u);
  EXPECT_EQ(a.TotalDurationNs(), 0u);
  EXPECT_FALSE(a.used_global_fallback);
  EXPECT_EQ(a.answer_size, 0u);
  for (const PhaseStats& p : a.phases) EXPECT_EQ(p.entered, 0u);
}

TEST(PhaseTrackerTest, UntimedTrackerNeverProducesDurations) {
  QueryTelemetry t;
  PhaseTracker tracker(&t, /*timed=*/false);
  PhaseStats& expansion = tracker.Enter(Phase::kExpansion);
  expansion.vertices_visited += 2;
  tracker.Enter(Phase::kCoreDecomposition);
  tracker.Enter(Phase::kExpansion);  // re-entering counts a new span
  tracker.Finish();
  EXPECT_EQ(t[Phase::kExpansion].entered, 2u);
  EXPECT_EQ(t[Phase::kCoreDecomposition].entered, 1u);
  EXPECT_EQ(t[Phase::kExpansion].vertices_visited, 2u);
  EXPECT_EQ(t.TotalDurationNs(), 0u);
}

TEST(PhaseTrackerTest, TimedTrackerChargesElapsedTimeToTheOpenPhase) {
  QueryTelemetry t;
  PhaseTracker tracker(&t, /*timed=*/true);
  tracker.Enter(Phase::kExpansion);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  tracker.Enter(Phase::kConnectivity);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  tracker.Finish();
  // Each phase held the span across a real sleep; both must have
  // accumulated wall time, and only the phases that were open get any.
  EXPECT_GT(t[Phase::kExpansion].duration_ns, 0u);
  EXPECT_GT(t[Phase::kConnectivity].duration_ns, 0u);
  EXPECT_EQ(t[Phase::kAdmission].duration_ns, 0u);
  EXPECT_EQ(t.TotalDurationNs(),
            t[Phase::kExpansion].duration_ns +
                t[Phase::kConnectivity].duration_ns);
}

TEST(RecorderTest, NullSinkIsProcessWideAndTimingDisabled) {
  Recorder& null_sink = Recorder::Null();
  EXPECT_FALSE(null_sink.timing_enabled());
  EXPECT_EQ(&null_sink, &Recorder::Null());
  QueryTelemetry t;
  t.answer_size = 3;
  null_sink.Record(t);  // must be a harmless no-op
}

TEST(AggregateRecorderTest, TotalsFoldAcrossQueries) {
  AggregateRecorder recorder;
  EXPECT_TRUE(recorder.timing_enabled());

  QueryTelemetry q1;
  q1[Phase::kExpansion].vertices_visited = 5;
  q1[Phase::kExpansion].entered = 1;
  q1[Phase::kExpansion].duration_ns = 100;
  recorder.Record(q1);

  QueryTelemetry q2;
  q2[Phase::kExpansion].vertices_visited = 7;
  q2[Phase::kExpansion].entered = 1;
  q2[Phase::kCoreDecomposition].edges_scanned = 9;
  q2[Phase::kCoreDecomposition].entered = 1;
  q2.used_global_fallback = true;
  recorder.Record(q2);

  const AggregateRecorder::Totals totals = recorder.Snapshot();
  EXPECT_EQ(totals.queries, 2u);
  EXPECT_EQ(totals.fallbacks, 1u);
  EXPECT_EQ(totals.sum[Phase::kExpansion].vertices_visited, 12u);
  EXPECT_EQ(totals.sum[Phase::kExpansion].entered, 2u);
  EXPECT_EQ(totals.sum[Phase::kExpansion].duration_ns, 100u);
  EXPECT_EQ(totals.sum[Phase::kCoreDecomposition].edges_scanned, 9u);
  EXPECT_EQ(totals.sum[Phase::kCandidates].entered, 0u);
}

TEST(AggregateRecorderTest, ConcurrentRecordsAllLand) {
  AggregateRecorder recorder;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 250;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&recorder] {
      QueryTelemetry t;
      t[Phase::kExpansion].vertices_visited = 1;
      for (int j = 0; j < kPerThread; ++j) recorder.Record(t);
    });
  }
  for (std::thread& t : threads) t.join();
  const AggregateRecorder::Totals totals = recorder.Snapshot();
  EXPECT_EQ(totals.queries, uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(totals.sum[Phase::kExpansion].vertices_visited,
            uint64_t{kThreads} * kPerThread);
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(TraceSinkTest, WritesOneJsonlLinePerQuery) {
  const std::string path = ::testing::TempDir() + "/trace_sink_test.jsonl";
  {
    TraceSink sink(path);
    ASSERT_TRUE(sink.ok());
    EXPECT_TRUE(sink.timing_enabled());

    QueryTelemetry q;
    q[Phase::kExpansion].entered = 1;
    q[Phase::kExpansion].vertices_visited = 4;
    q[Phase::kExpansion].edges_scanned = 17;
    q[Phase::kExpansion].duration_ns = 123;
    q.answer_size = 4;
    sink.Record(q);

    sink.Annotate("csm");
    QueryTelemetry r;
    r.used_global_fallback = true;
    sink.Record(r);
  }
  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 2u);
  // Line 0: seq, no label, totals, and exactly the entered phase block.
  EXPECT_NE(lines[0].find("\"seq\": 0"), std::string::npos) << lines[0];
  EXPECT_EQ(lines[0].find("\"label\""), std::string::npos) << lines[0];
  EXPECT_NE(lines[0].find("\"visited\": 4"), std::string::npos) << lines[0];
  EXPECT_NE(lines[0].find("\"scanned\": 17"), std::string::npos) << lines[0];
  EXPECT_NE(lines[0].find("\"fallback\": false"), std::string::npos)
      << lines[0];
  EXPECT_NE(lines[0].find("\"expansion\": {"), std::string::npos)
      << lines[0];
  EXPECT_NE(lines[0].find("\"duration_ns\": 123"), std::string::npos)
      << lines[0];
  // Phases with entered == 0 are skipped.
  EXPECT_EQ(lines[0].find("\"admission\""), std::string::npos) << lines[0];
  EXPECT_EQ(lines[0].find("\"core\""), std::string::npos) << lines[0];
  // Line 1: next seq, the annotation label, the fallback flag, and no
  // phase blocks at all (nothing was entered).
  EXPECT_NE(lines[1].find("\"seq\": 1"), std::string::npos) << lines[1];
  EXPECT_NE(lines[1].find("\"label\": \"csm\""), std::string::npos)
      << lines[1];
  EXPECT_NE(lines[1].find("\"fallback\": true"), std::string::npos)
      << lines[1];
  EXPECT_EQ(lines[1].find("\"expansion\""), std::string::npos) << lines[1];
}

TEST(TraceSinkTest, UnopenablePathReportsNotOk) {
  TraceSink sink("/nonexistent-dir-for-sure/trace.jsonl");
  EXPECT_FALSE(sink.ok());
  QueryTelemetry t;
  sink.Record(t);  // must not crash
  EXPECT_FALSE(sink.ok());
}

// ---------------------------------------------------------------------
// The JSON primitives the sink (and the bench reports) render with.
// ---------------------------------------------------------------------
TEST(JsonTest, QuoteEscapes) {
  EXPECT_EQ(json::Quote("plain"), "\"plain\"");
  EXPECT_EQ(json::Quote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(json::Quote("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(json::Quote("line\nbreak\tand\rreturn"),
            "\"line\\nbreak\\tand\\rreturn\"");
  // Literal split so the hex escape does not swallow the 'b'.
  EXPECT_EQ(json::Quote(std::string("ctl\x01" "byte")),
            "\"ctl\\u0001byte\"");
  EXPECT_EQ(json::Quote(std::string("esc\x1b!")), "\"esc\\u001b!\"");
}

TEST(JsonTest, NumbersRoundTrip) {
  EXPECT_EQ(json::Number(3.0), "3");
  EXPECT_EQ(json::Number(-2.0), "-2");
  EXPECT_EQ(json::Number(uint64_t{0}), "0");
  // uint64 values above 2^53 must render exactly (no double detour).
  EXPECT_EQ(json::Number(uint64_t{18446744073709551615u}),
            "18446744073709551615");
  // Doubles render the shortest form that parses back identically.
  const double value = 0.1;
  EXPECT_EQ(std::stod(json::Number(value)), value);
  // JSON has no NaN/Inf.
  EXPECT_EQ(json::Number(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(json::Number(std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonTest, ObjectRendersInInsertionOrder) {
  json::Object object;
  object.Str("name", "x").Count("n", 2).Bool("flag", true).Num("g", 1.5);
  EXPECT_EQ(object.Render(),
            "{\"name\": \"x\", \"n\": 2, \"flag\": true, \"g\": 1.5}");
  json::Object outer;
  outer.Field("inner", object.Render());
  EXPECT_EQ(outer.Render(),
            "{\"inner\": {\"name\": \"x\", \"n\": 2, \"flag\": true, "
            "\"g\": 1.5}}");
}

}  // namespace
}  // namespace locs::obs
