// MetricsSnapshot latency-percentile contract, table-driven. The
// histogram is power-of-two (bucket b >= 1 holds [2^(b-1), 2^b - 1] us,
// bucket 0 exactly 0 us) and LatencyPercentileUs reports the inclusive
// upper bound of the nearest-rank bucket — these tests pin the edge
// cases that an off-by-one in the rank or bound arithmetic flips:
// p = 1.0, a single sample, the empty histogram, and exact boundaries.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "serve/metrics.h"

namespace locs::serve {
namespace {

struct PercentileCase {
  const char* name;
  std::vector<uint64_t> samples_us;
  double p;
  uint64_t expect_us;
};

TEST(MetricsPercentileTest, TableDrivenEdgeCases) {
  const PercentileCase cases[] = {
      // The empty histogram reports 0 at every p.
      {"empty_p50", {}, 0.50, 0},
      {"empty_p100", {}, 1.0, 0},
      // Sub-microsecond queries land in bucket 0, whose inclusive upper
      // bound is 0 — not 1 (the old exclusive-bound bug).
      {"single_zero", {0}, 0.50, 0},
      // One 1us sample: every percentile is that sample's bucket [1, 1].
      // An exclusive upper bound would report 2 here.
      {"single_one_p50", {1}, 0.50, 1},
      {"single_one_p100", {1}, 1.0, 1},
      // 5us lands in [4, 7]; the inclusive bound is 7, not 8.
      {"single_five", {5}, 0.99, 7},
      // Two spread samples: rank ceil(0.5 * 2) = 1 picks the fast one,
      // p = 1.0 must pick the slow one (rank 2), never run off the end.
      {"pair_p50", {1, 1000}, 0.50, 1},
      {"pair_p100", {1, 1000}, 1.0, 1023},
      // p = 0 clamps the rank up to the first sample.
      {"pair_p0", {1, 1000}, 0.0, 1},
      // Boundary exactness: 2^b and 2^b - 1 sit in adjacent buckets.
      {"boundary_below", {1023}, 1.0, 1023},
      {"boundary_at", {1024}, 1.0, 2047},
      // 19 fast + 1 slow: p95 has rank ceil(0.95 * 20) = 19, still fast;
      // p96 crosses into the slow sample.
      {"tail_p95", [] {
         std::vector<uint64_t> s(19, 2);
         s.push_back(4096);
         return s;
       }(), 0.95, 3},
      {"tail_p96", [] {
         std::vector<uint64_t> s(19, 2);
         s.push_back(4096);
         return s;
       }(), 0.96, 8191},
  };
  for (const PercentileCase& c : cases) {
    ServerMetrics metrics;
    for (const uint64_t us : c.samples_us) metrics.RecordLatencyUs(us);
    const MetricsSnapshot snap = metrics.Snapshot();
    EXPECT_EQ(snap.LatencyPercentileUs(c.p), c.expect_us) << c.name;
  }
}

TEST(MetricsPercentileTest, PercentilesAreMonotoneInP) {
  ServerMetrics metrics;
  for (uint64_t us : {0u, 1u, 3u, 9u, 80u, 700u, 6000u, 50000u}) {
    metrics.RecordLatencyUs(us);
  }
  const MetricsSnapshot snap = metrics.Snapshot();
  uint64_t prev = 0;
  for (double p = 0.0; p <= 1.0; p += 0.05) {
    const uint64_t value = snap.LatencyPercentileUs(p);
    EXPECT_GE(value, prev) << "p=" << p;
    prev = value;
  }
  // p = 1.0 lands in the slowest sample's bucket: 50000 is in
  // [32768, 65535].
  EXPECT_EQ(snap.LatencyPercentileUs(1.0), 65535u);
}

TEST(MetricsPercentileTest, OpenEndedLastBucketReportsItsBound) {
  ServerMetrics metrics;
  metrics.RecordLatencyUs(uint64_t{1} << 40);  // beyond the last bucket
  const MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.LatencyPercentileUs(0.5), (uint64_t{1} << 31) - 1);
}

}  // namespace
}  // namespace locs::serve
