// Tests for the degree-distribution estimation module (Theorem 4, Lemma 5,
// Equation 3).

#include "estimate/theorem4.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "estimate/degree_dist.h"
#include "gen/classic.h"
#include "gen/erdos_renyi.h"
#include "gen/powerlaw.h"

namespace locs {
namespace {

using estimate::EmpiricalDegreeDistribution;
using estimate::EstimateEdgesAbove;
using estimate::EstimateVerticesAbove;
using estimate::QtDistribution;
using estimate::TailMass;
using estimate::Zeta;

TEST(DegreeDistTest, RegularGraphIsPointMass) {
  Graph g = gen::Cycle(50);
  const auto p = EmpiricalDegreeDistribution(g);
  ASSERT_EQ(p.size(), 3u);
  EXPECT_DOUBLE_EQ(p[2], 1.0);
  EXPECT_DOUBLE_EQ(p[0] + p[1], 0.0);
}

TEST(DegreeDistTest, SumsToOne) {
  Graph g = gen::PowerLawGraph(2000, 2.2, 2, 60, 5);
  const auto p = EmpiricalDegreeDistribution(g);
  const double total = std::accumulate(p.begin(), p.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(DegreeDistTest, ZetaZeroIsMeanDegree) {
  Graph g = gen::PowerLawGraph(3000, 2.0, 3, 80, 6);
  const auto p = EmpiricalDegreeDistribution(g);
  EXPECT_NEAR(Zeta(p, 0), g.AverageDegree(), 1e-9);
}

TEST(DegreeDistTest, ZetaMonotoneDecreasingInX) {
  Graph g = gen::PowerLawGraph(1000, 2.0, 2, 50, 7);
  const auto p = EmpiricalDegreeDistribution(g);
  double prev = Zeta(p, 0);
  for (uint32_t x = 1; x < p.size(); ++x) {
    const double cur = Zeta(p, x);
    EXPECT_LE(cur, prev + 1e-12);
    prev = cur;
  }
}

TEST(DegreeDistTest, TailMassMatchesDirectCount) {
  Graph g = gen::PowerLawGraph(1500, 2.1, 2, 40, 8);
  const auto p = EmpiricalDegreeDistribution(g);
  for (uint32_t k : {0u, 3u, 8u, 20u}) {
    uint64_t count = 0;
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      count += g.Degree(v) >= k;
    }
    EXPECT_NEAR(EstimateVerticesAbove(p, g.NumVertices(), k),
                static_cast<double>(count), 1e-6);
    EXPECT_NEAR(TailMass(p, k) * static_cast<double>(g.NumVertices()),
                static_cast<double>(count), 1e-6);
  }
}

TEST(Theorem4Test, QtIsADistribution) {
  Graph g = gen::PowerLawGraph(4000, 2.0, 3, 100, 9);
  const auto p = EmpiricalDegreeDistribution(g);
  for (uint32_t k : {2u, 5u, 10u}) {
    const auto qt = QtDistribution(p, k);
    const double total = std::accumulate(qt.begin(), qt.end(), 0.0);
    EXPECT_NEAR(total, 1.0, 1e-6) << "k=" << k;
    for (double q : qt) EXPECT_GE(q, 0.0);
  }
}

TEST(Theorem4Test, KZeroKeepsOriginalDistribution) {
  // With k = 0, p = 1 and q_t should reduce to p_t exactly.
  Graph g = gen::PowerLawGraph(800, 2.3, 2, 30, 10);
  const auto p = EmpiricalDegreeDistribution(g);
  const auto qt = QtDistribution(p, 0);
  ASSERT_EQ(qt.size(), p.size());
  for (size_t t = 0; t < p.size(); ++t) {
    EXPECT_NEAR(qt[t], p[t], 1e-9) << "t=" << t;
  }
}

TEST(Theorem4Test, EdgeEstimateExactAtKZero) {
  Graph g = gen::PowerLawGraph(1200, 2.0, 2, 50, 11);
  EXPECT_NEAR(EstimateEdgesAbove(g, 0), static_cast<double>(g.NumEdges()),
              static_cast<double>(g.NumEdges()) * 1e-6);
}

TEST(Theorem4Test, EdgeEstimateTracksRealityOnPowerLawGraphs) {
  // The §4.2.3 estimate should land within a factor ~2 of the true edge
  // count of G[V>=k] for moderate k on configuration-model graphs (it is
  // asymptotic and ignores degree-degree correlations).
  Graph g = gen::PowerLawGraph(20000, 2.0, 3, 200, 12);
  for (uint32_t k : {4u, 6u, 8u}) {
    std::vector<uint8_t> in(g.NumVertices(), 0);
    for (VertexId v = 0; v < g.NumVertices(); ++v) in[v] = g.Degree(v) >= k;
    uint64_t real_edges = 0;
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      if (!in[v]) continue;
      for (VertexId w : g.Neighbors(v)) real_edges += (w > v && in[w]);
    }
    if (real_edges < 100) continue;
    const double est = EstimateEdgesAbove(g, k);
    // Theorem 4 is asymptotic and assumes independent stub retention; the
    // erased configuration model introduces correlations that push the
    // estimate low at larger k, so the acceptance band is generous.
    EXPECT_GT(est, static_cast<double>(real_edges) * 0.3) << "k=" << k;
    EXPECT_LT(est, static_cast<double>(real_edges) * 3.0) << "k=" << k;
  }
}

TEST(Theorem4Test, ThresholdBeyondMaxDegree) {
  // k above the maximum degree: nothing survives; q collapses to a point
  // mass at degree 0 and both estimates vanish.
  Graph g = gen::Cycle(30);
  EXPECT_DOUBLE_EQ(EstimateVerticesAbove(g, 3), 0.0);
  EXPECT_DOUBLE_EQ(EstimateEdgesAbove(g, 3), 0.0);
  const auto p = EmpiricalDegreeDistribution(g);
  const auto qt = QtDistribution(p, 3);
  EXPECT_DOUBLE_EQ(qt[0], 1.0);
}

TEST(Theorem4Test, EmptyGraphIsSafe) {
  Graph empty;
  EXPECT_TRUE(EmpiricalDegreeDistribution(empty).empty());
  EXPECT_DOUBLE_EQ(EstimateVerticesAbove(empty, 1), 0.0);
  EXPECT_DOUBLE_EQ(EstimateEdgesAbove(empty, 1), 0.0);
}

TEST(Theorem4Test, EstimatesMonotoneInK) {
  Graph g = gen::PowerLawGraph(5000, 2.1, 2, 80, 13);
  double prev_v = EstimateVerticesAbove(g, 0);
  double prev_e = EstimateEdgesAbove(g, 0);
  for (uint32_t k = 1; k < 20; ++k) {
    const double ev = EstimateVerticesAbove(g, k);
    const double ee = EstimateEdgesAbove(g, k);
    EXPECT_LE(ev, prev_v + 1e-9);
    EXPECT_LE(ee, prev_e + prev_e * 1e-6 + 1e-9);
    prev_v = ev;
    prev_e = ee;
  }
}

}  // namespace
}  // namespace locs
