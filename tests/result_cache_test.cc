// Correctness suite of the locsd result cache: the LRU mapping itself,
// byte-identical differential replies (cached vs fresh) across verbs
// and option sets, cache-counter accounting in STATS, and the epoch
// keying that guarantees an EVICT + re-LOAD of a *different* graph
// under the same name never serves a stale reply.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <string>
#include <vector>

#include "gen/classic.h"
#include "graph/io.h"
#include "serve/admission.h"
#include "serve/result_cache.h"
#include "serve/session.h"

namespace locs::serve {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// ---------------------------------------------------------------------
// ResultCache unit behavior.

TEST(ResultCacheTest, LookupMissThenHit) {
  ResultCache cache(4);
  std::string reply;
  EXPECT_FALSE(cache.Lookup("k1", &reply));
  EXPECT_EQ(cache.Insert("k1", "OK one"), 0u);
  ASSERT_TRUE(cache.Lookup("k1", &reply));
  EXPECT_EQ(reply, "OK one");
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsed) {
  ResultCache cache(2);
  EXPECT_EQ(cache.Insert("a", "A"), 0u);
  EXPECT_EQ(cache.Insert("b", "B"), 0u);
  // Touch "a" so "b" becomes the LRU victim.
  std::string reply;
  ASSERT_TRUE(cache.Lookup("a", &reply));
  EXPECT_EQ(cache.Insert("c", "C"), 1u);
  EXPECT_TRUE(cache.Lookup("a", &reply));
  EXPECT_FALSE(cache.Lookup("b", &reply));
  EXPECT_TRUE(cache.Lookup("c", &reply));
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ResultCacheTest, ReinsertRefreshesWithoutEviction) {
  ResultCache cache(2);
  EXPECT_EQ(cache.Insert("a", "A1"), 0u);
  EXPECT_EQ(cache.Insert("a", "A2"), 0u);
  std::string reply;
  ASSERT_TRUE(cache.Lookup("a", &reply));
  EXPECT_EQ(reply, "A2");
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ResultCacheTest, ZeroCapacityNeverStores) {
  ResultCache cache(0);
  EXPECT_EQ(cache.Insert("a", "A"), 0u);
  std::string reply;
  EXPECT_FALSE(cache.Lookup("a", &reply));
  EXPECT_EQ(cache.size(), 0u);
}

// ---------------------------------------------------------------------
// End-to-end: scripted sessions with and without the cache.

/// Like serve_session_test's fixture, plus a shared ResultCache wired
/// into the session options.
struct CacheFixture {
  GraphRegistry registry{16};
  AdmissionController admission;
  ServerMetrics metrics;
  ResultCache cache;
  SessionOptions options;

  explicit CacheFixture(size_t cache_entries = 64)
      : cache(cache_entries) {
    options.cache = &cache;
  }

  void Register(const std::string& name, const Graph& graph) {
    const std::string path = TempPath("cache_fix_" + name + ".lcsg");
    ASSERT_TRUE(SaveBinary(graph, path));
    IoError error;
    bool full = false;
    ASSERT_NE(registry.Load(name, path, &error, &full), nullptr)
        << error.message;
  }

  std::vector<std::string> Run(const std::vector<std::string>& script,
                               const std::string& tag) {
    const std::string in_path = TempPath("cache_in_" + tag);
    const std::string out_path = TempPath("cache_out_" + tag);
    {
      const int fd =
          ::open(in_path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0600);
      EXPECT_GE(fd, 0);
      for (const std::string& line : script) {
        const std::string framed = line + "\n";
        EXPECT_EQ(::write(fd, framed.data(), framed.size()),
                  static_cast<ssize_t>(framed.size()));
      }
      ::close(fd);
    }
    const int in_fd = ::open(in_path.c_str(), O_RDONLY);
    const int out_fd =
        ::open(out_path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0600);
    EXPECT_GE(in_fd, 0);
    EXPECT_GE(out_fd, 0);
    {
      FdTransport transport(in_fd, out_fd);
      Session session(transport, registry, admission, metrics, options);
      session.Run();
    }
    ::close(in_fd);
    ::close(out_fd);

    std::vector<std::string> replies;
    const int read_fd = ::open(out_path.c_str(), O_RDONLY);
    EXPECT_GE(read_fd, 0);
    FdTransport reader(read_fd, -1);
    std::string line;
    while (reader.ReadLine(&line) == Transport::ReadStatus::kLine) {
      replies.push_back(line);
    }
    ::close(read_fd);
    return replies;
  }
};

/// The query mix the differential tests replay: every query verb, found
/// and not-exists outcomes, and the reply-shaping options (limit, trace,
/// gamma) that must all be part of the cache key.
const std::vector<std::string> kQueryMix = {
    "CST bb 0 5",
    "CST bb 0 7",            // exact negative (k above degeneracy)
    "CST bb 0 5 limit=2",    // same query, different rendering
    "CST bb 0 5 trace=1",    // same query, phase breakdown appended
    "CSM bb 0",
    "CSM bb 0 gamma=-1.5",   // wider Eq.-8 budget: distinct key
    "MULTI bb 5 0 1",
    "MULTI bb max 0 1",
};

TEST(ResultCacheServeTest, CachedRepliesAreByteIdenticalToFresh) {
  // Fresh baseline: a fixture with no cache at all.
  CacheFixture fresh;
  fresh.options.cache = nullptr;
  fresh.Register("bb", gen::Barbell(6, 2));
  auto fresh_replies = fresh.Run(kQueryMix, "fresh");

  // Cached run: the same mix twice through one shared cache. The first
  // pass misses and populates; the second pass is all hits.
  CacheFixture cached;
  cached.Register("bb", gen::Barbell(6, 2));
  std::vector<std::string> twice = kQueryMix;
  twice.insert(twice.end(), kQueryMix.begin(), kQueryMix.end());
  auto cached_replies = cached.Run(twice, "cached");

  ASSERT_EQ(fresh_replies.size(), kQueryMix.size());
  ASSERT_EQ(cached_replies.size(), 2 * kQueryMix.size());
  for (size_t i = 0; i < kQueryMix.size(); ++i) {
    // Miss pass == fresh baseline == hit pass, byte for byte.
    EXPECT_EQ(cached_replies[i], fresh_replies[i]) << kQueryMix[i];
    EXPECT_EQ(cached_replies[kQueryMix.size() + i], fresh_replies[i])
        << kQueryMix[i];
  }
  const MetricsSnapshot snap = cached.metrics.Snapshot();
  EXPECT_EQ(snap.cache_hits, kQueryMix.size());
  EXPECT_EQ(snap.cache_misses, kQueryMix.size());
  EXPECT_EQ(snap.cache_inserts, kQueryMix.size());
  EXPECT_EQ(snap.cache_evictions, 0u);
  // The second pass ran no solver: solver query count stays at one mix.
  // (CST bb 0 7 short-circuits on the core index and MULTI max runs a
  // binary search, so compare against the recorded total of pass one.)
  EXPECT_EQ(snap.telemetry.cache_hits, kQueryMix.size());
}

TEST(ResultCacheServeTest, OptionVariantsNeverShareAnEntry) {
  CacheFixture fix;
  fix.Register("bb", gen::Barbell(6, 2));
  const auto replies = fix.Run(
      {
          "CST bb 0 5",
          "CST bb 0 5 limit=2",
          "CST bb 0 5 trace=1",
          "CSM bb 0",
          "CSM bb 0 gamma=-1.5",
      },
      "variants");
  ASSERT_EQ(replies.size(), 5u);
  // All five are distinct keys: zero hits, five misses.
  const MetricsSnapshot snap = fix.metrics.Snapshot();
  EXPECT_EQ(snap.cache_hits, 0u);
  EXPECT_EQ(snap.cache_misses, 5u);
  // And the renderings genuinely differ where they must.
  EXPECT_NE(replies[0], replies[1]);  // limit truncates members
  EXPECT_NE(replies[0], replies[2]);  // trace appends phases
}

TEST(ResultCacheServeTest, EvictAndReloadDifferentGraphNeverServesStale) {
  // Barbell(6,2) has a CST(5) answer of n=6 delta=5 at vertex 0; a
  // 12-vertex cycle has no delta>=5 community at all. Same name, same
  // query, different graph contents — the cached barbell reply must not
  // survive the re-LOAD.
  CacheFixture fix;
  const std::string barbell_path = TempPath("cache_swap_barbell.lcsg");
  const std::string cycle_path = TempPath("cache_swap_cycle.lcsg");
  ASSERT_TRUE(SaveBinary(gen::Barbell(6, 2), barbell_path));
  ASSERT_TRUE(SaveBinary(gen::Cycle(12), cycle_path));

  const auto replies = fix.Run(
      {
          "LOAD g " + barbell_path,
          "CST g 0 5",  // miss + insert under the barbell epoch
          "CST g 0 5",  // hit
          "EVICT g",
          "CST g 0 5",  // unknown graph: cache must not resurrect it
          "LOAD g " + cycle_path,
          "CST g 0 5",  // same name + query, new epoch: must be fresh
          "CST g 0 5",  // and the cycle reply is itself cacheable
      },
      "swap");
  ASSERT_EQ(replies.size(), 8u);
  EXPECT_EQ(replies[1].rfind("OK status=found n=6 delta=5", 0), 0u)
      << replies[1];
  EXPECT_EQ(replies[2], replies[1]);
  EXPECT_EQ(replies[4].rfind("ERR unknown-graph", 0), 0u) << replies[4];
  EXPECT_EQ(replies[6].rfind("OK status=not-exists", 0), 0u)
      << "stale reply across re-LOAD: " << replies[6];
  EXPECT_EQ(replies[7], replies[6]);
  const MetricsSnapshot snap = fix.metrics.Snapshot();
  EXPECT_EQ(snap.cache_hits, 2u);  // one per graph generation
}

TEST(ResultCacheServeTest, ReplacingLoadOfSameFileStillMintsNewEpoch) {
  // Even re-LOADing the *same* path must not serve pre-replacement
  // replies: the registry cannot know the file is unchanged, so every
  // load generation gets its own key space (conservative, always safe).
  CacheFixture fix;
  const std::string path = TempPath("cache_reload_same.lcsg");
  ASSERT_TRUE(SaveBinary(gen::Barbell(6, 2), path));
  const auto replies = fix.Run(
      {
          "LOAD g " + path,
          "CST g 0 5",
          "LOAD g " + path,
          "CST g 0 5",
      },
      "reload");
  ASSERT_EQ(replies.size(), 4u);
  EXPECT_EQ(replies[3], replies[1]);
  const MetricsSnapshot snap = fix.metrics.Snapshot();
  EXPECT_EQ(snap.cache_hits, 0u);
  EXPECT_EQ(snap.cache_misses, 2u);
}

TEST(ResultCacheServeTest, StatsLineCarriesCacheCounters) {
  CacheFixture fix;
  fix.Register("bb", gen::Barbell(6, 2));
  const auto replies = fix.Run(
      {
          "CST bb 0 5",
          "CST bb 0 5",
          "STATS",
      },
      "stats");
  ASSERT_EQ(replies.size(), 3u);
  EXPECT_NE(replies[2].find(" cache_hits=1"), std::string::npos)
      << replies[2];
  EXPECT_NE(replies[2].find(" cache_misses=1"), std::string::npos)
      << replies[2];
  EXPECT_NE(replies[2].find(" cache_inserts=1"), std::string::npos)
      << replies[2];
  EXPECT_NE(replies[2].find(" cache_evictions=0"), std::string::npos)
      << replies[2];
}

TEST(ResultCacheServeTest, EvictionCountersSurfaceUnderTinyCapacity) {
  CacheFixture fix(/*cache_entries=*/1);
  fix.Register("bb", gen::Barbell(6, 2));
  const auto replies = fix.Run(
      {
          "CST bb 0 5",  // insert A
          "CSM bb 0",    // insert B, evicts A
          "CST bb 0 5",  // miss again (A was evicted), reinsert
      },
      "tiny");
  ASSERT_EQ(replies.size(), 3u);
  EXPECT_EQ(replies[2], replies[0]);
  const MetricsSnapshot snap = fix.metrics.Snapshot();
  EXPECT_EQ(snap.cache_hits, 0u);
  EXPECT_EQ(snap.cache_misses, 3u);
  EXPECT_EQ(snap.cache_inserts, 3u);
  EXPECT_EQ(snap.cache_evictions, 2u);
}

}  // namespace
}  // namespace locs::serve
