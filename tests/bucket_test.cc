// Tests for the bucket priority structures (MinBucketQueue, MaxBucketList,
// EpochBucketList) and the EpochArray scratch machinery.

#include <gtest/gtest.h>

#include <queue>

#include "core/bucket_list.h"
#include "core/epoch.h"
#include "util/bucket_queue.h"
#include "util/rng.h"

namespace locs {
namespace {

TEST(MinBucketQueueTest, PopsInKeyOrder) {
  MinBucketQueue queue({3, 1, 4, 1, 5, 9, 2, 6});
  uint32_t prev = 0;
  while (!queue.Empty()) {
    const uint32_t key = queue.MinKey();
    EXPECT_GE(key, prev);
    prev = key;
    queue.PopMin();
  }
}

TEST(MinBucketQueueTest, DecrementMovesElementEarlier) {
  MinBucketQueue queue({5, 5, 5, 0});
  EXPECT_EQ(queue.PopMin(), 3u);  // the key-0 element
  queue.DecrementKey(1);
  queue.DecrementKey(1);
  EXPECT_EQ(queue.Key(1), 3u);
  EXPECT_EQ(queue.PopMin(), 1u);
}

TEST(MinBucketQueueTest, PoppedFlag) {
  MinBucketQueue queue({1, 2});
  EXPECT_FALSE(queue.Popped(0));
  EXPECT_EQ(queue.PopMin(), 0u);
  EXPECT_TRUE(queue.Popped(0));
  EXPECT_FALSE(queue.Popped(1));
}

TEST(MinBucketQueueTest, StressAgainstHeap) {
  Rng rng(31);
  std::vector<uint32_t> keys(200);
  for (auto& k : keys) k = static_cast<uint32_t>(rng.Below(50));
  MinBucketQueue queue(keys);
  // Interleave decrements and pops; mirror with a recomputed reference.
  std::vector<uint32_t> live = keys;
  std::vector<bool> popped(keys.size(), false);
  for (int round = 0; round < 300; ++round) {
    if (rng.Chance(0.5) && !queue.Empty()) {
      const uint32_t min_key = queue.MinKey();
      uint32_t expect = ~0u;
      for (size_t i = 0; i < live.size(); ++i) {
        if (!popped[i]) expect = std::min(expect, live[i]);
      }
      EXPECT_EQ(min_key, expect);
      const uint32_t v = queue.PopMin();
      EXPECT_EQ(live[v], expect);
      popped[v] = true;
    } else {
      // Pick a random unpopped element with positive key to decrement.
      for (int tries = 0; tries < 20; ++tries) {
        const auto v = static_cast<uint32_t>(rng.Below(keys.size()));
        if (!popped[v] && live[v] > 0 && live[v] > queue.MinKey()) {
          queue.DecrementKey(v);
          --live[v];
          break;
        }
      }
    }
  }
}

TEST(MaxBucketListTest, BasicMaxOrder) {
  MaxBucketList list(10, 20);
  list.Insert(0, 3);
  list.Insert(1, 7);
  list.Insert(2, 5);
  EXPECT_EQ(list.MaxKey(), 7u);
  EXPECT_EQ(list.PopMax(), 1u);
  EXPECT_EQ(list.PopMax(), 2u);
  EXPECT_EQ(list.PopMax(), 0u);
  EXPECT_TRUE(list.Empty());
}

TEST(MaxBucketListTest, IncrementRaisesPriority) {
  MaxBucketList list(4, 10);
  list.Insert(0, 1);
  list.Insert(1, 2);
  list.Increment(0);
  list.Increment(0);
  EXPECT_EQ(list.Key(0), 3u);
  EXPECT_EQ(list.PopMax(), 0u);
}

TEST(MaxBucketListTest, EraseRemoves) {
  MaxBucketList list(4, 10);
  list.Insert(0, 5);
  list.Insert(1, 5);
  list.Erase(0);
  EXPECT_FALSE(list.Contains(0));
  EXPECT_EQ(list.Size(), 1u);
  EXPECT_EQ(list.PopMax(), 1u);
}

TEST(EpochBucketListTest, FifoWithinBucket) {
  EpochBucketList list(8, 8);
  list.Insert(3, 1);
  list.Insert(5, 1);
  list.Insert(1, 1);
  EXPECT_EQ(list.PopMax(), 3u);  // first inserted pops first
  EXPECT_EQ(list.PopMax(), 5u);
  EXPECT_EQ(list.PopMax(), 1u);
}

TEST(EpochBucketListTest, NewEpochResetsInO1) {
  EpochBucketList list(8, 8);
  list.Insert(0, 4);
  list.Insert(1, 2);
  list.NewEpoch();
  EXPECT_TRUE(list.Empty());
  EXPECT_FALSE(list.Contains(0));
  list.Insert(0, 1);
  EXPECT_EQ(list.PopMax(), 0u);
  EXPECT_TRUE(list.Empty());
}

TEST(EpochBucketListTest, MinAndMaxTracking) {
  EpochBucketList list(10, 16);
  list.Insert(0, 5);
  list.Insert(1, 2);
  list.Insert(2, 9);
  EXPECT_EQ(list.MinKey(), 2u);
  EXPECT_EQ(list.MaxKey(), 9u);
  list.Erase(1);
  EXPECT_EQ(list.MinKey(), 5u);
  list.Increment(0);
  EXPECT_EQ(list.Key(0), 6u);
  EXPECT_EQ(list.PopMax(), 2u);
  EXPECT_EQ(list.PopMax(), 0u);
}

TEST(EpochBucketListTest, BucketIterationViaHeadNext) {
  EpochBucketList list(8, 4);
  list.Insert(2, 3);
  list.Insert(4, 3);
  list.Insert(6, 3);
  std::vector<uint32_t> seen;
  for (uint32_t v = list.Head(3); v != EpochBucketList::kNil;
       v = list.Next(v)) {
    seen.push_back(v);
  }
  EXPECT_EQ(seen, (std::vector<uint32_t>{2, 4, 6}));
}

TEST(EpochBucketListTest, ReinsertAfterErase) {
  EpochBucketList list(4, 4);
  list.Insert(1, 2);
  list.Erase(1);
  EXPECT_FALSE(list.Contains(1));
  list.Insert(1, 3);
  EXPECT_TRUE(list.Contains(1));
  EXPECT_EQ(list.Key(1), 3u);
}

TEST(EpochBucketListTest, StressAgainstMultiset) {
  Rng rng(41);
  constexpr uint32_t kCap = 64;
  constexpr uint32_t kMaxKey = 32;
  EpochBucketList list(kCap, kMaxKey);
  std::vector<int> key(kCap, -1);  // -1 = absent
  for (int round = 0; round < 5000; ++round) {
    const auto v = static_cast<uint32_t>(rng.Below(kCap));
    const double dice = rng.NextDouble();
    if (dice < 0.35 && key[v] < 0) {
      const auto k = static_cast<uint32_t>(rng.Below(kMaxKey - 1));
      list.Insert(v, k);
      key[v] = static_cast<int>(k);
    } else if (dice < 0.55 && key[v] >= 0 &&
               key[v] + 1 < static_cast<int>(kMaxKey)) {
      list.Increment(v);
      ++key[v];
    } else if (dice < 0.7 && key[v] >= 0) {
      list.Erase(v);
      key[v] = -1;
    } else if (!list.Empty()) {
      int expect_max = -1;
      for (int k : key) expect_max = std::max(expect_max, k);
      EXPECT_EQ(static_cast<int>(list.MaxKey()), expect_max);
      const uint32_t popped = list.PopMax();
      EXPECT_EQ(key[popped], expect_max);
      key[popped] = -1;
    }
    // Size invariant.
    uint32_t present = 0;
    for (int k : key) present += k >= 0;
    ASSERT_EQ(list.Size(), present);
  }
}

TEST(EpochArrayTest, DefaultsUntilWritten) {
  EpochArray<uint32_t> arr(4);
  EXPECT_EQ(arr.Get(0), 0u);
  EXPECT_FALSE(arr.Fresh(0));
  arr.Ref(0) = 7;
  EXPECT_EQ(arr.Get(0), 7u);
  EXPECT_TRUE(arr.Fresh(0));
}

TEST(EpochArrayTest, NewEpochInvalidates) {
  EpochArray<uint8_t> arr(4);
  arr.Ref(1) = 1;
  arr.Ref(2) = 1;
  arr.NewEpoch();
  EXPECT_EQ(arr.Get(1), 0);
  EXPECT_EQ(arr.Get(2), 0);
  EXPECT_FALSE(arr.Fresh(1));
  arr.Ref(1) = 5;
  EXPECT_EQ(arr.Get(1), 5);
}

TEST(EpochArrayTest, RefResetsStaleValue) {
  EpochArray<uint32_t> arr(2);
  arr.Ref(0) = 9;
  arr.NewEpoch();
  uint32_t& ref = arr.Ref(0);
  EXPECT_EQ(ref, 0u);  // stale value must not leak through
  ref = 3;
  EXPECT_EQ(arr.Get(0), 3u);
}

}  // namespace
}  // namespace locs
