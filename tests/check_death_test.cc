// Death tests: API misuse must trap loudly through LOCS_CHECK rather than
// corrupt state (the library is exception-free by design).

#include <gtest/gtest.h>

#include "gen/classic.h"
#include "graph/builder.h"
#include "graph/graph.h"
#include "util/check.h"

namespace locs {
namespace {

TEST(CheckDeathTest, CheckMacroAborts) {
  EXPECT_DEATH(LOCS_CHECK(1 == 2), "LOCS_CHECK failed");
  EXPECT_DEATH(LOCS_CHECK_MSG(false, "context"), "context");
  EXPECT_DEATH(LOCS_CHECK_LT(5, 3), "LOCS_CHECK failed");
}

TEST(CheckDeathTest, BuilderRejectsOutOfRangeVertex) {
  GraphBuilder builder(3);
  EXPECT_DEATH(builder.AddEdge(0, 3), "LOCS_CHECK failed");
}

TEST(CheckDeathTest, FromCsrRejectsMalformedOffsets) {
  EXPECT_DEATH(Graph::FromCsr({}, {}), "LOCS_CHECK failed");
  EXPECT_DEATH(Graph::FromCsr({1, 2}, {0, 0}), "LOCS_CHECK failed");
  // Offsets must end at the neighbor count.
  EXPECT_DEATH(Graph::FromCsr({0, 1}, {}), "LOCS_CHECK failed");
}

TEST(CheckDeathTest, Figure1LabelBounds) {
  EXPECT_DEATH(gen::Figure1Vertex('z'), "LOCS_CHECK failed");
  EXPECT_DEATH(gen::Figure1Label(14), "LOCS_CHECK failed");
}

TEST(CheckDeathTest, CycleRequiresThreeVertices) {
  EXPECT_DEATH(gen::Cycle(2), "LOCS_CHECK failed");
}

}  // namespace
}  // namespace locs
