// Tests for the core-hierarchy index (CoreIndex): output-sensitive CST /
// CSM answers must match the global solvers exactly, for every vertex and
// every k, across graph families.

#include "core/core_index.h"

#include <gtest/gtest.h>

#include "core/global.h"
#include "gen/classic.h"
#include "gen/erdos_renyi.h"
#include "gen/lfr.h"
#include "gen/planted.h"
#include "graph/builder.h"
#include "test_util.h"

namespace locs {
namespace {

using testing::ToSet;

void ExpectMatchesGlobal(const Graph& g) {
  const CoreIndex index(g);
  for (VertexId v0 = 0; v0 < g.NumVertices(); ++v0) {
    const Community expect_csm = *GlobalCsm(g, v0);
    const Community got_csm = index.Csm(v0);
    ASSERT_EQ(got_csm.min_degree, expect_csm.min_degree) << "v0=" << v0;
    ASSERT_EQ(ToSet(got_csm.members), ToSet(expect_csm.members))
        << "v0=" << v0;
    for (uint32_t k = 0; k <= index.CoreNumber(v0) + 1; ++k) {
      const auto expect = GlobalCst(g, v0, k);
      const auto got = index.CstMembers(v0, k);
      ASSERT_EQ(!got.empty(), expect.has_value())
          << "v0=" << v0 << " k=" << k;
      ASSERT_EQ(index.HasCst(v0, k), expect.has_value());
      if (expect.has_value()) {
        ASSERT_EQ(ToSet(got), ToSet(expect->members))
            << "v0=" << v0 << " k=" << k;
      }
    }
  }
}

TEST(CoreIndexTest, PaperFigure1) {
  ExpectMatchesGlobal(gen::PaperFigure1());
}

TEST(CoreIndexTest, ClassicFamilies) {
  ExpectMatchesGlobal(gen::Clique(9));
  ExpectMatchesGlobal(gen::Cycle(12));
  ExpectMatchesGlobal(gen::Star(11));
  ExpectMatchesGlobal(gen::Barbell(5, 3));
  ExpectMatchesGlobal(gen::Grid(4, 6));
  ExpectMatchesGlobal(gen::CompleteBipartite(3, 5));
  ExpectMatchesGlobal(gen::Path(7));
}

TEST(CoreIndexTest, DisconnectedGraph) {
  GraphBuilder builder(12);
  for (VertexId u = 0; u < 4; ++u) {
    for (VertexId v = u + 1; v < 4; ++v) {
      builder.AddEdge(u, v);
      builder.AddEdge(u + 4, v + 4);
    }
  }
  builder.AddEdge(8, 9);  // plus two isolated vertices 10, 11
  ExpectMatchesGlobal(builder.Build());
}

TEST(CoreIndexTest, EmptyAndSingleton) {
  const CoreIndex empty(Graph{});
  EXPECT_EQ(empty.Degeneracy(), 0u);
  Graph singleton = BuildGraph(1, {});
  const CoreIndex index(singleton);
  EXPECT_EQ(index.CoreNumber(0), 0u);
  EXPECT_EQ(index.Csm(0).members, std::vector<VertexId>{0});
  EXPECT_TRUE(index.HasCst(0, 0));
  EXPECT_FALSE(index.HasCst(0, 1));
}

class CoreIndexRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CoreIndexRandomTest, MatchesGlobalOnGnp) {
  ExpectMatchesGlobal(gen::ErdosRenyiGnp(70, 0.1, GetParam()));
}

TEST_P(CoreIndexRandomTest, MatchesGlobalOnPlanted) {
  const gen::PlantedGraph planted =
      gen::PlantedPartition(4, 15, 0.5, 0.02, GetParam() + 99);
  ExpectMatchesGlobal(planted.graph);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoreIndexRandomTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(CoreIndexTest, LfrSpotChecks) {
  gen::LfrParams params;
  params.n = 600;
  params.min_degree = 3;
  params.max_degree = 25;
  params.min_community = 12;
  params.max_community = 60;
  params.seed = 7;
  const gen::LfrGraph lfr = gen::Lfr(params);
  const CoreIndex index(lfr.graph);
  for (VertexId v0 = 0; v0 < lfr.graph.NumVertices(); v0 += 41) {
    const Community expect = *GlobalCsm(lfr.graph, v0);
    EXPECT_EQ(index.Csm(v0).min_degree, expect.min_degree);
    EXPECT_EQ(ToSet(index.Csm(v0).members), ToSet(expect.members));
    for (uint32_t k : {1u, 3u, 6u}) {
      const auto got = index.CstMembers(v0, k);
      const auto want = GlobalCst(lfr.graph, v0, k);
      ASSERT_EQ(!got.empty(), want.has_value());
      if (want.has_value()) {
        EXPECT_EQ(ToSet(got), ToSet(want->members));
      }
    }
  }
  // The merge tree stays linear in the vertex count.
  EXPECT_LE(index.NumTreeNodes(), 2 * lfr.graph.NumVertices() + 1);
}

}  // namespace
}  // namespace locs
