// Tests for the random-graph generators: determinism, structural
// invariants, and distributional properties.

#include <gtest/gtest.h>

#include <numeric>

#include "gen/barabasi.h"
#include "gen/classic.h"
#include "gen/erdos_renyi.h"
#include "gen/lfr.h"
#include "gen/planted.h"
#include "gen/powerlaw.h"
#include "graph/invariants.h"
#include "graph/traversal.h"
#include "util/rng.h"

namespace locs {
namespace {

TEST(ErdosRenyiTest, GnpDeterministicPerSeed) {
  Graph a = gen::ErdosRenyiGnp(100, 0.05, 3);
  Graph b = gen::ErdosRenyiGnp(100, 0.05, 3);
  Graph c = gen::ErdosRenyiGnp(100, 0.05, 4);
  EXPECT_EQ(a.neighbors(), b.neighbors());
  EXPECT_NE(a.neighbors(), c.neighbors());
}

TEST(ErdosRenyiTest, GnpEdgeCountNearExpectation) {
  const VertexId n = 400;
  const double p = 0.03;
  double total = 0;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    total += static_cast<double>(gen::ErdosRenyiGnp(n, p, seed).NumEdges());
  }
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(total / 8.0, expected, expected * 0.08);
}

TEST(ErdosRenyiTest, GnpExtremes) {
  EXPECT_EQ(gen::ErdosRenyiGnp(20, 0.0, 1).NumEdges(), 0u);
  EXPECT_EQ(gen::ErdosRenyiGnp(20, 1.0, 1).NumEdges(), 190u);
  EXPECT_EQ(gen::ErdosRenyiGnp(1, 0.5, 1).NumEdges(), 0u);
}

TEST(ErdosRenyiTest, GnpValid) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    EXPECT_EQ(ValidateGraph(gen::ErdosRenyiGnp(150, 0.04, seed)), "");
  }
}

TEST(ErdosRenyiTest, GnmExactEdgeCount) {
  for (uint64_t m : {0u, 1u, 50u, 300u}) {
    Graph g = gen::ErdosRenyiGnm(60, m, 9);
    EXPECT_EQ(g.NumEdges(), m);
    EXPECT_EQ(ValidateGraph(g), "");
  }
}

TEST(ErdosRenyiTest, GnmCompleteGraph) {
  Graph g = gen::ErdosRenyiGnm(10, 45, 2);
  EXPECT_EQ(g.NumEdges(), 45u);
  EXPECT_EQ(g.MinDegree(), 9u);
}

TEST(BarabasiTest, DegreesAndValidity) {
  Graph g = gen::BarabasiAlbert(2000, 3, 5);
  EXPECT_EQ(ValidateGraph(g), "");
  EXPECT_EQ(g.NumVertices(), 2000u);
  // Each new vertex adds at most m edges.
  EXPECT_LE(g.NumEdges(), 6u + (2000u - 4u) * 3u);
  // Scale-free: the max degree should far exceed the mean.
  EXPECT_GT(g.MaxDegree(), 4 * static_cast<uint32_t>(g.AverageDegree()));
  // Connected by construction.
  EXPECT_EQ(BfsOrder(g, 0).size(), g.NumVertices());
}

TEST(PowerLawTest, DegreeSequenceBoundsAndParity) {
  Rng rng(7);
  const auto degrees = gen::PowerLawDegreeSequence(501, 2.0, 3, 40, rng);
  ASSERT_EQ(degrees.size(), 501u);
  uint64_t total = 0;
  for (uint32_t d : degrees) {
    EXPECT_GE(d, 3u);
    EXPECT_LE(d, 40u);
    total += d;
  }
  EXPECT_EQ(total % 2, 0u);
}

TEST(PowerLawTest, ConfigurationModelApproximatesSequence) {
  Rng rng(11);
  const auto degrees = gen::PowerLawDegreeSequence(1000, 2.2, 4, 50, rng);
  Graph g = gen::ConfigurationModel(degrees, rng);
  EXPECT_EQ(ValidateGraph(g), "");
  const uint64_t want =
      std::accumulate(degrees.begin(), degrees.end(), uint64_t{0}) / 2;
  // Erased model: some loss to self-loops/duplicates, but modest.
  EXPECT_GT(g.NumEdges(), want * 85 / 100);
  EXPECT_LE(g.NumEdges(), want);
}

TEST(LfrTest, BasicShape) {
  gen::LfrParams params;
  params.n = 1000;
  params.seed = 21;
  const gen::LfrGraph lfr = gen::Lfr(params);
  EXPECT_EQ(lfr.graph.NumVertices(), params.n);
  EXPECT_EQ(ValidateGraph(lfr.graph), "");
  EXPECT_EQ(lfr.community.size(), params.n);
  EXPECT_GT(lfr.num_communities, 1u);
  for (uint32_t c : lfr.community) EXPECT_LT(c, lfr.num_communities);
}

TEST(LfrTest, DeterministicPerSeed) {
  gen::LfrParams params;
  params.n = 500;
  params.seed = 33;
  const gen::LfrGraph a = gen::Lfr(params);
  const gen::LfrGraph b = gen::Lfr(params);
  EXPECT_EQ(a.graph.neighbors(), b.graph.neighbors());
  EXPECT_EQ(a.community, b.community);
}

TEST(LfrTest, MixingParameterControlsLocality) {
  // Small μ ⇒ most edges intra-community; large μ ⇒ many cross edges.
  auto cross_fraction = [](double mu) {
    gen::LfrParams params;
    params.n = 2000;
    params.mu = mu;
    params.seed = 55;
    const gen::LfrGraph lfr = gen::Lfr(params);
    uint64_t cross = 0;
    uint64_t total = 0;
    for (VertexId v = 0; v < lfr.graph.NumVertices(); ++v) {
      for (VertexId w : lfr.graph.Neighbors(v)) {
        if (w < v) continue;
        ++total;
        cross += lfr.community[v] != lfr.community[w];
      }
    }
    return static_cast<double>(cross) / static_cast<double>(total);
  };
  const double low = cross_fraction(0.1);
  const double high = cross_fraction(0.5);
  EXPECT_LT(low, 0.2);
  EXPECT_GT(high, 0.35);
  EXPECT_LT(low, high);
}

TEST(LfrTest, CommunitySizesWithinBounds) {
  gen::LfrParams params;
  params.n = 3000;
  params.min_community = 25;
  params.max_community = 120;
  params.seed = 77;
  const gen::LfrGraph lfr = gen::Lfr(params);
  std::vector<uint32_t> sizes(lfr.num_communities, 0);
  for (uint32_t c : lfr.community) ++sizes[c];
  for (uint32_t s : sizes) {
    EXPECT_GE(s, 1u);
    // The remainder-absorbing community may exceed max_community slightly.
    EXPECT_LE(s, params.max_community + params.min_community);
  }
}

TEST(LfrTest, DegreesRoughlyMatchRequestedRange) {
  gen::LfrParams params;
  params.n = 2000;
  params.min_degree = 6;
  params.max_degree = 60;
  params.seed = 88;
  const gen::LfrGraph lfr = gen::Lfr(params);
  // The erased wiring can undershoot, but the body of the distribution
  // should be in range: mean degree within [min_degree*0.8, max_degree].
  const double avg = lfr.graph.AverageDegree();
  EXPECT_GT(avg, params.min_degree * 0.8);
  EXPECT_LT(avg, params.max_degree);
  EXPECT_LE(lfr.graph.MaxDegree(), params.max_degree);
}

TEST(PlantedPartitionTest, StructureAndLabels) {
  const gen::PlantedGraph planted =
      gen::PlantedPartition(4, 25, 0.5, 0.01, 99);
  EXPECT_EQ(planted.graph.NumVertices(), 100u);
  EXPECT_EQ(planted.num_communities, 4u);
  EXPECT_EQ(ValidateGraph(planted.graph), "");
  // Count intra vs inter edges: intra should dominate heavily.
  uint64_t intra = 0;
  uint64_t inter = 0;
  for (VertexId v = 0; v < planted.graph.NumVertices(); ++v) {
    for (VertexId w : planted.graph.Neighbors(v)) {
      if (w < v) continue;
      if (planted.community[v] == planted.community[w]) {
        ++intra;
      } else {
        ++inter;
      }
    }
  }
  EXPECT_GT(intra, inter * 2);
}

TEST(RelaxedCavemanTest, ZeroRewireIsDisjointCliques) {
  const gen::PlantedGraph caves = gen::RelaxedCaveman({5, 6, 7}, 0.0, 1);
  EXPECT_EQ(caves.graph.NumVertices(), 18u);
  EXPECT_EQ(caves.graph.NumEdges(), 10u + 15u + 21u);
  const Components comps = ConnectedComponents(caves.graph);
  EXPECT_EQ(comps.count, 3u);
}

TEST(RelaxedCavemanTest, RewiringKeepsGraphSimple) {
  const gen::PlantedGraph caves =
      gen::RelaxedCaveman({10, 10, 10, 10}, 0.2, 5);
  EXPECT_EQ(ValidateGraph(caves.graph), "");
  // Rewiring drops some edges to self-loops/duplicates, never adds.
  EXPECT_LE(caves.graph.NumEdges(), 4u * 45u);
  EXPECT_GT(caves.graph.NumEdges(), 4u * 45u * 8 / 10);
}

}  // namespace
}  // namespace locs
