// Concurrency coverage of AdmissionController: the inflight cap and
// queue bound must hold under thread churn with randomized hold times,
// tickets must never leak (including on exception paths), the tiered
// shedding ladder must drop lower-value work classes at the documented
// queue occupancies, and the total ledger (admitted + rejected + shed)
// must conserve across every outcome. Runs under the TSan lane via the
// `concurrency` label.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "serve/admission.h"
#include "util/rng.h"

namespace locs::serve {
namespace {

using WorkClass = AdmissionController::WorkClass;
using Decision = AdmissionController::Decision;

/// Busy-spin for a pseudo-random number of yields — a hold time with
/// scheduler noise but no sleeping, keeping the test fast under TSan.
void HoldBriefly(Rng& rng) {
  const unsigned yields = static_cast<unsigned>(rng.Next() % 8);
  for (unsigned i = 0; i < yields; ++i) std::this_thread::yield();
}

TEST(AdmissionConcurrencyTest, InflightNeverExceedsCapUnderChurn) {
  AdmissionController::Options options;
  options.max_inflight = 4;
  options.max_queued = 8;
  AdmissionController admission(options);

  constexpr unsigned kThreads = 16;
  constexpr unsigned kItersPerThread = 300;
  std::atomic<int> concurrent{0};
  std::atomic<int> max_seen{0};
  std::atomic<uint64_t> admitted{0};
  std::atomic<uint64_t> turned_away{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(t + 1);
      for (unsigned i = 0; i < kItersPerThread; ++i) {
        AdmissionTicket ticket(admission);
        if (!ticket.admitted()) {
          turned_away.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        const int now = concurrent.fetch_add(1, std::memory_order_relaxed) + 1;
        int seen = max_seen.load(std::memory_order_relaxed);
        while (now > seen &&
               !max_seen.compare_exchange_weak(seen, now,
                                               std::memory_order_relaxed)) {
        }
        HoldBriefly(rng);
        concurrent.fetch_sub(1, std::memory_order_relaxed);
        admitted.fetch_add(1, std::memory_order_relaxed);
        // Queue bound must hold at any sampled instant.
        EXPECT_LE(admission.Snapshot().queued, options.max_queued);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_LE(max_seen.load(), static_cast<int>(options.max_inflight));
  const AdmissionController::Counts counts = admission.Snapshot();
  EXPECT_EQ(counts.inflight, 0u);  // no ticket leaked
  EXPECT_EQ(counts.queued, 0u);
  EXPECT_EQ(counts.admitted_total, admitted.load());
  EXPECT_EQ(counts.rejected_total + counts.shed_total, turned_away.load());
  EXPECT_EQ(counts.admitted_total + counts.rejected_total +
                counts.shed_total,
            uint64_t{kThreads} * kItersPerThread);
}

TEST(AdmissionConcurrencyTest, NoLeakOnExceptionPath) {
  AdmissionController admission;
  for (int i = 0; i < 50; ++i) {
    try {
      AdmissionTicket ticket(admission);
      ASSERT_TRUE(ticket.admitted());
      throw std::runtime_error("query blew up");
    } catch (const std::runtime_error&) {
    }
  }
  const AdmissionController::Counts counts = admission.Snapshot();
  EXPECT_EQ(counts.inflight, 0u);
  EXPECT_EQ(counts.admitted_total, 50u);
}

/// Deterministic ladder scenario: one admitted holder saturates
/// max_inflight=1, then critical waiters are parked one at a time until
/// the queue reaches a chosen occupancy; the class under test must then
/// shed/reject immediately (never block) at its documented bound.
class LadderScenario {
 public:
  explicit LadderScenario(unsigned max_queued) {
    AdmissionController::Options options;
    options.max_inflight = 1;
    options.max_queued = max_queued;
    admission_ = std::make_unique<AdmissionController>(options);
    holder_ = std::thread([this] {
      AdmissionTicket ticket(*admission_);
      EXPECT_TRUE(ticket.admitted());
      while (!release_.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    });
    WaitUntil([&] { return admission_->Snapshot().inflight == 1; });
  }

  ~LadderScenario() {
    release_.store(true, std::memory_order_release);
    holder_.join();
    for (std::thread& waiter : waiters_) waiter.join();
    const AdmissionController::Counts counts = admission_->Snapshot();
    EXPECT_EQ(counts.inflight, 0u);
    EXPECT_EQ(counts.queued, 0u);
  }

  /// Parks critical waiters until `target` of them are queued.
  void FillQueue(unsigned target) {
    while (admission_->Snapshot().queued < target) {
      waiters_.emplace_back([this] {
        AdmissionTicket ticket(*admission_);
        EXPECT_TRUE(ticket.admitted());
      });
      const unsigned want = admission_->Snapshot().queued;
      WaitUntil([&] { return admission_->Snapshot().queued > want; });
    }
  }

  AdmissionController& admission() { return *admission_; }

 private:
  template <typename Pred>
  static void WaitUntil(Pred pred) {
    for (int spin = 0; !pred(); ++spin) {
      ASSERT_LT(spin, 100000) << "scenario setup stalled";
      std::this_thread::yield();
    }
  }

  std::unique_ptr<AdmissionController> admission_;
  std::thread holder_;
  std::vector<std::thread> waiters_;
  std::atomic<bool> release_{false};
};

TEST(AdmissionLadderTest, BulkShedsAtHalfQueue) {
  LadderScenario scenario(/*max_queued=*/4);
  scenario.FillQueue(2);  // bulk bound: max(1, 4/2) = 2
  uint64_t hint = 0;
  EXPECT_EQ(scenario.admission().Enter(WorkClass::kBulk, &hint),
            Decision::kShed);
  EXPECT_GT(hint, 0u);
  // Retryable (bound 3) and critical still have queue headroom; they are
  // not shed at this occupancy (verified via the counters, not by
  // calling Enter, which would block in the queue).
  EXPECT_EQ(scenario.admission().Snapshot().shed_total, 1u);
}

TEST(AdmissionLadderTest, RetryableShedsAtThreeQuarters) {
  LadderScenario scenario(/*max_queued=*/4);
  scenario.FillQueue(3);  // retryable bound: max(1, 3*4/4) = 3
  uint64_t hint = 0;
  EXPECT_EQ(scenario.admission().Enter(WorkClass::kRetryable, &hint),
            Decision::kShed);
  EXPECT_EQ(scenario.admission().Enter(WorkClass::kBulk, nullptr),
            Decision::kShed);
  EXPECT_EQ(scenario.admission().Snapshot().shed_total, 2u);
}

TEST(AdmissionLadderTest, CriticalRejectedOnlyAtFullQueue) {
  LadderScenario scenario(/*max_queued=*/4);
  scenario.FillQueue(4);
  uint64_t hint = 0;
  EXPECT_EQ(scenario.admission().Enter(WorkClass::kCritical, &hint),
            Decision::kRejected);
  EXPECT_GT(hint, 0u);
}

TEST(AdmissionLadderTest, RetryAfterHintGrowsWithQueueDepth) {
  LadderScenario scenario(/*max_queued=*/8);
  const uint64_t idle_hint = scenario.admission().RetryAfterMs();
  scenario.FillQueue(4);
  EXPECT_GT(scenario.admission().RetryAfterMs(), idle_hint);
}

TEST(AdmissionLadderTest, ZeroQueueControllerNeverSheds) {
  // max_queued == 0 is the pure admit-or-reject configuration; the
  // ladder must stay out of the way (historical behavior).
  AdmissionController::Options options;
  options.max_inflight = 1;
  options.max_queued = 0;
  AdmissionController admission(options);
  EXPECT_EQ(admission.Enter(WorkClass::kBulk, nullptr),
            Decision::kAdmitted);
  EXPECT_EQ(admission.Enter(WorkClass::kBulk, nullptr),
            Decision::kRejected);
  admission.Leave();
  EXPECT_EQ(admission.Snapshot().shed_total, 0u);
}

}  // namespace
}  // namespace locs::serve
