// Cross-solver equivalence matrix: every CST/CSM implementation in the
// library must agree with every other on feasibility and optimality,
// across a grid of generators, thresholds, and strategies. This is the
// integration suite that ties the whole stack together.

#include <gtest/gtest.h>

#include <limits>

#include "core/bounds.h"
#include "core/core_index.h"
#include "core/global.h"
#include "core/local_csm.h"
#include "core/local_cst.h"
#include "core/multi.h"
#include "gen/barabasi.h"
#include "gen/classic.h"
#include "gen/erdos_renyi.h"
#include "gen/lfr.h"
#include "gen/planted.h"
#include "gen/powerlaw.h"
#include "graph/subgraph.h"
#include "test_util.h"

namespace locs {
namespace {

/// The graph family grid.
enum class Family { kGnp, kBarabasi, kPowerLaw, kLfr, kPlanted };

std::string FamilyName(Family family) {
  switch (family) {
    case Family::kGnp:
      return "gnp";
    case Family::kBarabasi:
      return "ba";
    case Family::kPowerLaw:
      return "powerlaw";
    case Family::kLfr:
      return "lfr";
    case Family::kPlanted:
      return "planted";
  }
  return "?";
}

Graph MakeGraph(Family family, uint64_t seed) {
  switch (family) {
    case Family::kGnp:
      return gen::ErdosRenyiGnp(90, 0.08, seed);
    case Family::kBarabasi:
      return gen::BarabasiAlbert(120, 3, seed);
    case Family::kPowerLaw:
      return gen::PowerLawGraph(150, 2.2, 2, 25, seed);
    case Family::kLfr: {
      gen::LfrParams params;
      params.n = 200;
      params.min_degree = 3;
      params.max_degree = 18;
      params.min_community = 10;
      params.max_community = 40;
      params.seed = seed;
      return gen::Lfr(params).graph;
    }
    case Family::kPlanted:
      return gen::PlantedPartition(5, 20, 0.45, 0.02, seed).graph;
  }
  return Graph();
}

struct GridParam {
  Family family;
  uint64_t seed;
};

std::string GridName(const ::testing::TestParamInfo<GridParam>& info) {
  return FamilyName(info.param.family) + "_s" +
         std::to_string(info.param.seed);
}

class CrossSolverTest : public ::testing::TestWithParam<GridParam> {
 protected:
  void SetUp() override {
    graph_ = MakeGraph(GetParam().family, GetParam().seed);
    facts_ = GraphFacts::Compute(graph_);
    ordered_.emplace(graph_);
    index_.emplace(graph_);
  }

  Graph graph_;
  GraphFacts facts_;
  std::optional<OrderedAdjacency> ordered_;
  std::optional<CoreIndex> index_;
};

TEST_P(CrossSolverTest, CstFeasibilityMatrixAgrees) {
  LocalCstSolver solver(graph_, &*ordered_, &facts_);
  LocalMultiSolver multi(graph_, &*ordered_, &facts_);
  for (VertexId v0 = 0; v0 < graph_.NumVertices(); v0 += 11) {
    const uint32_t m_star = index_->CoreNumber(v0);
    for (uint32_t k = 0; k <= m_star + 2; ++k) {
      const bool expect = k <= m_star;
      EXPECT_EQ(GlobalCst(graph_, v0, k).has_value(), expect)
          << "global v0=" << v0 << " k=" << k;
      EXPECT_EQ(index_->HasCst(v0, k), expect);
      for (Strategy strategy :
           {Strategy::kNaive, Strategy::kLG, Strategy::kLI}) {
        CstOptions options;
        options.strategy = strategy;
        const auto local = solver.Solve(v0, k, options);
        ASSERT_EQ(local.has_value(), expect)
            << StrategyName(strategy) << " v0=" << v0 << " k=" << k;
        if (local.has_value()) {
          EXPECT_TRUE(IsValidCommunity(graph_, local->members, v0, k));
        }
      }
      EXPECT_EQ(multi.CstMulti({v0}, k).has_value(), expect);
    }
  }
}

TEST_P(CrossSolverTest, CsmOptimaAgreeEverywhere) {
  LocalCsmSolver solver(graph_, &*ordered_, &facts_);
  LocalMultiSolver multi(graph_, &*ordered_, &facts_);
  constexpr double kMinusInf = -std::numeric_limits<double>::infinity();
  for (VertexId v0 = 0; v0 < graph_.NumVertices(); v0 += 13) {
    const uint32_t expect = index_->CoreNumber(v0);
    EXPECT_EQ(GlobalCsm(graph_, v0)->min_degree, expect) << "v0=" << v0;
    EXPECT_EQ(GreedyGlobalCsm(graph_, v0).min_degree, expect);
    EXPECT_EQ(index_->Csm(v0).min_degree, expect);
    CsmOptions csm2;
    csm2.candidate_rule = CsmCandidateRule::kFromNaive;
    csm2.gamma = 5.0;
    EXPECT_EQ(solver.Solve(v0, csm2)->min_degree, expect) << "v0=" << v0;
    CsmOptions csm1;
    csm1.candidate_rule = CsmCandidateRule::kFromVisited;
    csm1.gamma = kMinusInf;
    EXPECT_EQ(solver.Solve(v0, csm1)->min_degree, expect) << "v0=" << v0;
    EXPECT_EQ(multi.CsmMulti({v0})->min_degree, expect) << "v0=" << v0;
  }
}

TEST_P(CrossSolverTest, MaximalAnswersContainLocalAnswers) {
  // Lemma 3: every CST(k) answer is a subset of the k-core component.
  LocalCstSolver solver(graph_, &*ordered_, &facts_);
  for (VertexId v0 = 0; v0 < graph_.NumVertices(); v0 += 17) {
    const uint32_t m_star = index_->CoreNumber(v0);
    for (uint32_t k = 1; k <= m_star; ++k) {
      const auto local = solver.Solve(v0, k);
      ASSERT_TRUE(local.has_value());
      const auto maximal = testing::ToSet(index_->CstMembers(v0, k));
      for (VertexId member : local->members) {
        EXPECT_TRUE(maximal.count(member) > 0)
            << "member " << member << " outside the k-core component";
      }
    }
  }
}

TEST_P(CrossSolverTest, Theorem3BoundHolds) {
  // On connected graphs the bound caps every optimum.
  if (!facts_.connected) GTEST_SKIP() << "bound requires connectivity";
  const uint32_t bound =
      MStarUpperBound(facts_.num_edges, facts_.num_vertices);
  for (VertexId v0 = 0; v0 < graph_.NumVertices(); ++v0) {
    EXPECT_LE(index_->CoreNumber(v0), bound);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CrossSolverTest,
    ::testing::Values(GridParam{Family::kGnp, 1},
                      GridParam{Family::kGnp, 2},
                      GridParam{Family::kBarabasi, 1},
                      GridParam{Family::kBarabasi, 2},
                      GridParam{Family::kPowerLaw, 1},
                      GridParam{Family::kPowerLaw, 2},
                      GridParam{Family::kLfr, 1},
                      GridParam{Family::kLfr, 2},
                      GridParam{Family::kPlanted, 1},
                      GridParam{Family::kPlanted, 2}),
    GridName);

}  // namespace
}  // namespace locs
