// Tests for the CSR Graph, GraphBuilder, and basic accessors.

#include "graph/graph.h"

#include <gtest/gtest.h>

#include "gen/classic.h"
#include "graph/builder.h"
#include "graph/invariants.h"
#include "test_util.h"

namespace locs {
namespace {

using testing::ToSet;

TEST(GraphTest, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.NumVertices(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_EQ(g.MaxDegree(), 0u);
  EXPECT_EQ(g.MinDegree(), 0u);
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 0.0);
}

TEST(GraphTest, SingleEdge) {
  Graph g = BuildGraph(2, {{0, 1}});
  EXPECT_EQ(g.NumVertices(), 2u);
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_EQ(g.Degree(0), 1u);
  EXPECT_EQ(g.Degree(1), 1u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
}

TEST(GraphTest, IsolatedVerticesAllowed) {
  Graph g = BuildGraph(5, {{0, 1}});
  EXPECT_EQ(g.NumVertices(), 5u);
  EXPECT_EQ(g.Degree(4), 0u);
  EXPECT_EQ(g.MinDegree(), 0u);
}

TEST(GraphBuilderTest, DropsSelfLoops) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 0);
  builder.AddEdge(0, 1);
  Graph g = builder.Build();
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_FALSE(g.HasEdge(0, 0));
}

TEST(GraphBuilderTest, CollapsesDuplicatesBothOrientations) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 0);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  Graph g = builder.Build();
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_EQ(g.Degree(1), 2u);
}

TEST(GraphBuilderTest, AdjacencySortedAscending) {
  Graph g = BuildGraph(6, {{3, 5}, {3, 1}, {3, 4}, {3, 0}, {3, 2}});
  const auto nbrs = g.Neighbors(3);
  ASSERT_EQ(nbrs.size(), 5u);
  for (size_t i = 1; i < nbrs.size(); ++i) {
    EXPECT_LT(nbrs[i - 1], nbrs[i]);
  }
}

TEST(GraphBuilderTest, ReusableAfterBuild) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  Graph g1 = builder.Build();
  builder.AddEdge(2, 3);
  Graph g2 = builder.Build();
  EXPECT_EQ(g1.NumEdges(), 1u);
  EXPECT_EQ(g2.NumEdges(), 2u);
}

TEST(GraphTest, CliqueDegrees) {
  Graph g = gen::Clique(6);
  EXPECT_EQ(g.NumEdges(), 15u);
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(g.Degree(v), 5u);
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 5.0);
}

TEST(GraphTest, HasEdgeNegative) {
  Graph g = gen::Cycle(5);
  EXPECT_TRUE(g.HasEdge(0, 4));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_FALSE(g.HasEdge(1, 3));
}

TEST(GraphTest, FromCsrRoundTrip) {
  Graph original = gen::Grid(3, 4);
  Graph copy = Graph::FromCsr(
      {original.offsets().begin(), original.offsets().end()},
      {original.neighbors().begin(), original.neighbors().end()});
  EXPECT_EQ(copy.NumVertices(), original.NumVertices());
  EXPECT_EQ(copy.NumEdges(), original.NumEdges());
  EXPECT_EQ(ValidateGraph(copy), "");
}

TEST(GraphInvariantsTest, ValidatesClassicFamilies) {
  EXPECT_EQ(ValidateGraph(gen::Clique(8)), "");
  EXPECT_EQ(ValidateGraph(gen::Cycle(9)), "");
  EXPECT_EQ(ValidateGraph(gen::Star(10)), "");
  EXPECT_EQ(ValidateGraph(gen::Grid(4, 5)), "");
  EXPECT_EQ(ValidateGraph(gen::Barbell(4, 2)), "");
  EXPECT_EQ(ValidateGraph(gen::CompleteBipartite(3, 4)), "");
  EXPECT_EQ(ValidateGraph(gen::PaperFigure1()), "");
}

TEST(GraphInvariantsTest, DetectsAsymmetry) {
  // Hand-craft a broken CSR: 0 -> 1 but not 1 -> 0. Bypass the builder.
  std::vector<uint64_t> offsets = {0, 1, 1};
  std::vector<VertexId> neighbors = {1};
  // FromCsr's debug validation does not check symmetry; ValidateGraph must.
  Graph g = Graph::FromCsr(std::move(offsets), std::move(neighbors));
  EXPECT_NE(ValidateGraph(g), "");
}

TEST(PaperFigure1Test, MatchesExampleOneStructure) {
  Graph g = gen::PaperFigure1();
  EXPECT_EQ(g.NumVertices(), 14u);
  auto v = [](char c) { return gen::Figure1Vertex(c); };
  // V1 = {a,b,c,d,e} has minimum induced degree 3 (Example 1).
  const std::vector<VertexId> v1 = {v('a'), v('b'), v('c'), v('d'), v('e')};
  EXPECT_EQ(MinDegreeOfInduced(g, v1), 3u);
  // Adding f drops the minimum degree to 1 (Example 1).
  std::vector<VertexId> v1f = v1;
  v1f.push_back(v('f'));
  EXPECT_EQ(MinDegreeOfInduced(g, v1f), 1u);
  // a is adjacent to exactly b, d, e (Example 3).
  EXPECT_EQ(ToSet({g.Neighbors(v('a')).begin(), g.Neighbors(v('a')).end()}),
            ToSet({v('b'), v('d'), v('e')}));
  // Example 3: S = {a,b,d,e} has δ = 2; adding c raises it to 3, adding f
  // lowers it to 1.
  const std::vector<VertexId> s = {v('a'), v('b'), v('d'), v('e')};
  EXPECT_EQ(MinDegreeOfInduced(g, s), 2u);
  std::vector<VertexId> sc = s;
  sc.push_back(v('c'));
  EXPECT_EQ(MinDegreeOfInduced(g, sc), 3u);
  std::vector<VertexId> sf = s;
  sf.push_back(v('f'));
  EXPECT_EQ(MinDegreeOfInduced(g, sf), 1u);
}

TEST(PaperFigure1Test, LabelRoundTrip) {
  for (char c = 'a'; c <= 'n'; ++c) {
    EXPECT_EQ(gen::Figure1Label(gen::Figure1Vertex(c)), std::string(1, c));
  }
}

}  // namespace
}  // namespace locs
