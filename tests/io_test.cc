// Tests for edge-list and binary graph persistence.

#include "graph/io.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>

#include "gen/classic.h"
#include "gen/erdos_renyi.h"
#include "graph/builder.h"
#include "graph/invariants.h"
#include "util/failpoint.h"

namespace locs {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(EdgeListIoTest, RoundTrip) {
  Graph original = gen::ErdosRenyiGnp(50, 0.1, 7);
  const std::string path = TempPath("roundtrip.txt");
  ASSERT_TRUE(SaveEdgeList(original, path));
  const auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.has_value());
  // Vertex ids may be remapped (isolated vertices are dropped by the
  // edge-list format), but edge count and degree multiset survive.
  EXPECT_EQ(loaded->NumEdges(), original.NumEdges());
  EXPECT_EQ(ValidateGraph(*loaded), "");
}

TEST(EdgeListIoTest, ParsesSnapStyleComments) {
  const std::string path = TempPath("snap.txt");
  {
    std::ofstream out(path);
    out << "# SNAP-style header\n";
    out << "% another comment style\n";
    out << "10 20\n20 30\n30 10\n";
  }
  const auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->NumVertices(), 3u);
  EXPECT_EQ(loaded->NumEdges(), 3u);
  EXPECT_EQ(loaded->MinDegree(), 2u);
}

TEST(EdgeListIoTest, CompactsSparseIds) {
  const std::string path = TempPath("sparse_ids.txt");
  {
    std::ofstream out(path);
    out << "1000000 2000000\n2000000 3000000\n";
  }
  const auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->NumVertices(), 3u);
}

TEST(EdgeListIoTest, MissingFileReturnsNullopt) {
  EXPECT_FALSE(LoadEdgeList("/nonexistent/path/graph.txt").has_value());
}

TEST(EdgeListIoTest, LongCommentAndEdgeLinesSurvive) {
  // Lines longer than any fixed stack buffer (SNAP headers routinely
  // exceed 256 chars) must neither split nor abort the load.
  const std::string path = TempPath("long_lines.txt");
  {
    std::ofstream out(path);
    out << "# " << std::string(2000, 'x') << "\n";
    out << "% " << std::string(5000, 'y') << "\n";
    out << "10 20" << std::string(600, ' ') << "\n";  // trailing blanks
    out << std::string(300, ' ') << "20 30\n";        // leading blanks
    out << "30 10\n";
  }
  const auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->NumVertices(), 3u);
  EXPECT_EQ(loaded->NumEdges(), 3u);
}

TEST(EdgeListIoTest, CrlfAndBlankLinesAreTolerated) {
  const std::string path = TempPath("crlf.txt");
  {
    std::ofstream out(path, std::ios::binary);
    out << "# exported on windows\r\n";
    out << "10 20\r\n";
    out << "\r\n";       // CR-only blank line
    out << "   \n";      // whitespace-only line
    out << "20 30\r\n";
    out << "30 10";      // final line without newline
  }
  const auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->NumVertices(), 3u);
  EXPECT_EQ(loaded->NumEdges(), 3u);
  EXPECT_EQ(loaded->MinDegree(), 2u);
}

TEST(EdgeListIoTest, FullRangeIdsRoundThroughParsing) {
  // Values beyond 32 bits exercise the strtoull path (the old %lu sscanf
  // was UB on LLP64 targets).
  const std::string path = TempPath("wide_ids.txt");
  {
    std::ofstream out(path);
    out << "8589934592 17179869184\n";   // 2^33, 2^34
    out << "17179869184 8589934593\n";
  }
  const auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->NumVertices(), 3u);
  EXPECT_EQ(loaded->NumEdges(), 2u);
}

TEST(EdgeListIoTest, MalformedLineFails) {
  const std::string path = TempPath("bad.txt");
  {
    std::ofstream out(path);
    out << "1 2\nnot numbers\n";
  }
  EXPECT_FALSE(LoadEdgeList(path).has_value());
}

TEST(BinaryIoTest, ExactRoundTrip) {
  Graph original = gen::ErdosRenyiGnp(200, 0.05, 11);
  const std::string path = TempPath("graph.lcsg");
  ASSERT_TRUE(SaveBinary(original, path));
  const auto loaded = LoadBinary(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->offsets(), original.offsets());
  EXPECT_EQ(loaded->neighbors(), original.neighbors());
}

TEST(BinaryIoTest, PreservesIsolatedVertices) {
  Graph original = BuildGraph(10, {{0, 1}});
  const std::string path = TempPath("isolated.lcsg");
  ASSERT_TRUE(SaveBinary(original, path));
  const auto loaded = LoadBinary(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->NumVertices(), 10u);
  EXPECT_EQ(loaded->NumEdges(), 1u);
}

TEST(BinaryIoTest, RejectsBadMagic) {
  const std::string path = TempPath("junk.lcsg");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a locs graph file at all, padding padding";
  }
  EXPECT_FALSE(LoadBinary(path).has_value());
}

TEST(BinaryIoTest, RejectsTruncatedFile) {
  Graph original = gen::Clique(20);
  const std::string path = TempPath("trunc.lcsg");
  ASSERT_TRUE(SaveBinary(original, path));
  // Truncate the file to half its size.
  std::FILE* f = std::fopen(path.c_str(), "r+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
  EXPECT_FALSE(LoadBinary(path).has_value());
}

TEST(BinaryIoTest, MissingFileReturnsNullopt) {
  EXPECT_FALSE(LoadBinary("/nonexistent/path/graph.lcsg").has_value());
}

TEST(MetisIoTest, RoundTrip) {
  Graph original = gen::ErdosRenyiGnp(60, 0.1, 13);
  const std::string path = TempPath("graph.metis");
  ASSERT_TRUE(SaveMetis(original, path));
  const auto loaded = LoadMetis(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->offsets(), original.offsets());
  EXPECT_EQ(loaded->neighbors(), original.neighbors());
}

TEST(MetisIoTest, ParsesCommentsAndHeader) {
  const std::string path = TempPath("hand.metis");
  {
    std::ofstream out(path);
    out << "% a triangle plus a pendant\n";
    out << "4 4\n";
    out << "2 3\n";
    out << "1 3\n";
    out << "1 2 4\n";
    out << "3\n";
  }
  const auto loaded = LoadMetis(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->NumVertices(), 4u);
  EXPECT_EQ(loaded->NumEdges(), 4u);
  EXPECT_TRUE(loaded->HasEdge(0, 1));
  EXPECT_TRUE(loaded->HasEdge(2, 3));
  EXPECT_FALSE(loaded->HasEdge(0, 3));
}

TEST(MetisIoTest, ToleratesDoubledEdgeCountHeader) {
  // Some writers store 2m (both edge directions) in the header.
  const std::string path = TempPath("twom.metis");
  {
    std::ofstream out(path);
    out << "3 6\n";  // a triangle has 3 edges; header says 2*3
    out << "2 3\n";
    out << "1 3\n";
    out << "1 2\n";
  }
  const auto loaded = LoadMetis(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->NumVertices(), 3u);
  EXPECT_EQ(loaded->NumEdges(), 3u);
}

TEST(MetisIoTest, CrlfAndLongVertexLinesSurvive) {
  // A CRLF file with one adjacency line far beyond any fixed buffer: a
  // star center adjacent to 20k leaves (~120KB on one line).
  const VertexId leaves = 20000;
  const std::string path = TempPath("crlf_star.metis");
  {
    std::ofstream out(path, std::ios::binary);
    out << "% windows line endings\r\n";
    out << (leaves + 1) << " " << leaves << "\r\n";
    for (VertexId leaf = 0; leaf < leaves; ++leaf) {
      out << (leaf + 2) << (leaf + 1 < leaves ? " " : "");
    }
    out << "\r\n";
    for (VertexId leaf = 0; leaf < leaves; ++leaf) out << "1\r\n";
  }
  const auto loaded = LoadMetis(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->NumVertices(), leaves + 1);
  EXPECT_EQ(loaded->NumEdges(), uint64_t{leaves});
  EXPECT_EQ(loaded->Degree(0), leaves);
}

TEST(MetisIoTest, RejectsWeightedFormat) {
  const std::string path = TempPath("weighted.metis");
  {
    std::ofstream out(path);
    out << "2 1 011\n1 2\n2 1\n";
  }
  EXPECT_FALSE(LoadMetis(path).has_value());
}

TEST(MetisIoTest, RejectsOutOfRangeNeighbor) {
  const std::string path = TempPath("badid.metis");
  {
    std::ofstream out(path);
    out << "2 1\n2\n3\n";
  }
  EXPECT_FALSE(LoadMetis(path).has_value());
}

TEST(MetisIoTest, RejectsTruncatedVertexLines) {
  const std::string path = TempPath("short.metis");
  {
    std::ofstream out(path);
    out << "3 2\n2\n1 3\n";  // third vertex line missing
  }
  EXPECT_FALSE(LoadMetis(path).has_value());
}

TEST(MetisIoTest, IsolatedVerticesViaEmptyLines) {
  Graph original = BuildGraph(5, {{0, 4}});
  const std::string path = TempPath("isolated.metis");
  ASSERT_TRUE(SaveMetis(original, path));
  const auto loaded = LoadMetis(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->NumVertices(), 5u);
  EXPECT_EQ(loaded->NumEdges(), 1u);
}

TEST(EdgeListIoTest, EmptyGraphRoundTrip) {
  Graph empty = BuildGraph(0, {});
  const std::string path = TempPath("empty.lcsg");
  ASSERT_TRUE(SaveBinary(empty, path));
  const auto loaded = LoadBinary(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->NumVertices(), 0u);
}

// ---------------------------------------------------------------------------
// IoError detail: every loader distinguishes file-missing from malformed
// content and from truncation, with a line number for text parse errors.

TEST(IoErrorTest, MissingFileReportsOpenKindInEveryFormat) {
  IoError error;
  EXPECT_FALSE(LoadEdgeList(TempPath("nope.txt"), &error).has_value());
  EXPECT_EQ(error.kind, IoErrorKind::kOpen);
  EXPECT_FALSE(error.message.empty());

  EXPECT_FALSE(LoadMetis(TempPath("nope.metis"), &error).has_value());
  EXPECT_EQ(error.kind, IoErrorKind::kOpen);

  EXPECT_FALSE(LoadBinary(TempPath("nope.lcsg"), &error).has_value());
  EXPECT_EQ(error.kind, IoErrorKind::kOpen);
}

TEST(IoErrorTest, SuccessfulLoadResetsStaleError) {
  const std::string path = TempPath("reset.txt");
  {
    std::ofstream out(path);
    out << "0 1\n";
  }
  IoError error;
  error.kind = IoErrorKind::kParse;
  error.message = "stale";
  error.line = 99;
  ASSERT_TRUE(LoadEdgeList(path, &error).has_value());
  EXPECT_TRUE(error.ok());
  EXPECT_TRUE(error.message.empty());
  EXPECT_EQ(error.line, 0u);
}

TEST(IoErrorTest, EdgeListParseErrorReportsOffendingLine) {
  const std::string path = TempPath("badline.txt");
  {
    std::ofstream out(path);
    out << "# comment\n0 1\nnot numbers\n";
  }
  IoError error;
  EXPECT_FALSE(LoadEdgeList(path, &error).has_value());
  EXPECT_EQ(error.kind, IoErrorKind::kParse);
  EXPECT_EQ(error.line, 3u);
  // The message itself names the line: consumers that only forward the
  // message string (the locsd ERR detail) still localize the failure.
  EXPECT_NE(error.message.find("line 3"), std::string::npos)
      << error.message;
}

TEST(IoErrorTest, EdgeListMissingEndpointReportsParse) {
  const std::string path = TempPath("halfedge.txt");
  {
    std::ofstream out(path);
    out << "0 1\n7\n";
  }
  IoError error;
  EXPECT_FALSE(LoadEdgeList(path, &error).has_value());
  EXPECT_EQ(error.kind, IoErrorKind::kParse);
  EXPECT_EQ(error.line, 2u);
  EXPECT_NE(error.message.find("line 2"), std::string::npos)
      << error.message;
}

TEST(IoErrorTest, MetisWeightedFormatIsParseError) {
  const std::string path = TempPath("weighted.metis");
  {
    std::ofstream out(path);
    out << "2 1 011\n2\n1\n";
  }
  IoError error;
  EXPECT_FALSE(LoadMetis(path, &error).has_value());
  EXPECT_EQ(error.kind, IoErrorKind::kParse);
}

TEST(IoErrorTest, MetisMissingVertexLinesIsTruncated) {
  const std::string path = TempPath("short.metis");
  {
    std::ofstream out(path);
    out << "3 2\n2\n1 3\n";  // header says 3 vertices, only 2 lines
  }
  IoError error;
  EXPECT_FALSE(LoadMetis(path, &error).has_value());
  EXPECT_EQ(error.kind, IoErrorKind::kTruncated);
}

TEST(IoErrorTest, BinaryBadMagicIsParseError) {
  const std::string path = TempPath("badmagic.lcsg");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTAGRAPHFILE_________________";
  }
  IoError error;
  EXPECT_FALSE(LoadBinary(path, &error).has_value());
  EXPECT_EQ(error.kind, IoErrorKind::kParse);
}

TEST(IoErrorTest, BinaryTruncationIsReported) {
  Graph g = gen::Clique(6);
  const std::string path = TempPath("trunc_err.lcsg");
  ASSERT_TRUE(SaveBinary(g, path));
  // Chop the file in the middle of the neighbor array.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  bytes.resize(bytes.size() - 8);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  IoError error;
  EXPECT_FALSE(LoadBinary(path, &error).has_value());
  EXPECT_EQ(error.kind, IoErrorKind::kTruncated);
}

#if LOCS_FAILPOINTS

TEST(IoFailpointTest, ShortReadFailpointForcesTruncationPath) {
  Graph g = gen::Clique(5);
  const std::string path = TempPath("fp_short.lcsg");
  ASSERT_TRUE(SaveBinary(g, path));
  // Sanity: the file itself is fine.
  ASSERT_TRUE(LoadBinary(path).has_value());

  failpoint::ScopedFailpoint fp("io.binary.short_read");
  IoError error;
  EXPECT_FALSE(LoadBinary(path, &error).has_value());
  EXPECT_EQ(error.kind, IoErrorKind::kTruncated);
  EXPECT_GE(failpoint::HitCount("io.binary.short_read"), 1u);
}

TEST(IoFailpointTest, AllocFailpointForcesAllocError) {
  Graph g = gen::Clique(5);
  const std::string path = TempPath("fp_alloc.lcsg");
  ASSERT_TRUE(SaveBinary(g, path));

  failpoint::ScopedFailpoint fp("io.binary.alloc");
  IoError error;
  EXPECT_FALSE(LoadBinary(path, &error).has_value());
  EXPECT_EQ(error.kind, IoErrorKind::kAlloc);
  EXPECT_GE(failpoint::HitCount("io.binary.alloc"), 1u);

  // Disarmed again, the same file loads.
  failpoint::Disarm("io.binary.alloc");
  EXPECT_TRUE(LoadBinary(path, &error).has_value());
  EXPECT_TRUE(error.ok());
}

TEST(IoFailpointTest, SkipCountDelaysTheFailure) {
  Graph g = gen::Clique(4);
  const std::string path = TempPath("fp_skip.lcsg");
  ASSERT_TRUE(SaveBinary(g, path));

  failpoint::ScopedFailpoint fp("io.binary.short_read", /*skip=*/2);
  EXPECT_TRUE(LoadBinary(path).has_value());   // hit 1: skipped
  EXPECT_TRUE(LoadBinary(path).has_value());   // hit 2: skipped
  EXPECT_FALSE(LoadBinary(path).has_value());  // hit 3: fires
  EXPECT_EQ(failpoint::HitCount("io.binary.short_read"), 3u);
}

#endif  // LOCS_FAILPOINTS

}  // namespace
}  // namespace locs
