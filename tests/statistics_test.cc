// Tests for whole-graph statistics.

#include "graph/statistics.h"

#include <gtest/gtest.h>

#include <numeric>

#include "gen/classic.h"
#include "gen/erdos_renyi.h"
#include "graph/builder.h"

namespace locs {
namespace {

TEST(DegreeHistogramTest, StarAndClique) {
  const auto star = DegreeHistogram(gen::Star(6));
  ASSERT_EQ(star.size(), 6u);
  EXPECT_EQ(star[1], 5u);
  EXPECT_EQ(star[5], 1u);
  const auto clique = DegreeHistogram(gen::Clique(5));
  EXPECT_EQ(clique[4], 5u);
}

TEST(DegreeHistogramTest, SumsToVertexCount) {
  Graph g = gen::ErdosRenyiGnp(100, 0.05, 9);
  const auto histogram = DegreeHistogram(g);
  EXPECT_EQ(std::accumulate(histogram.begin(), histogram.end(),
                            uint64_t{0}),
            g.NumVertices());
}

TEST(ClusteringTest, CliqueIsOne) {
  Graph g = gen::Clique(6);
  for (VertexId v = 0; v < 6; ++v) {
    EXPECT_DOUBLE_EQ(LocalClusteringCoefficient(g, v), 1.0);
  }
  EXPECT_DOUBLE_EQ(AverageClusteringCoefficient(g, 100, 1), 1.0);
}

TEST(ClusteringTest, TreeIsZero) {
  Graph g = gen::Star(10);
  EXPECT_DOUBLE_EQ(AverageClusteringCoefficient(g, 100, 1), 0.0);
}

TEST(ClusteringTest, TriangleWithPendant) {
  // Triangle {0,1,2} plus pendant 3 on vertex 0.
  Graph g = BuildGraph(4, {{0, 1}, {1, 2}, {2, 0}, {0, 3}});
  EXPECT_DOUBLE_EQ(LocalClusteringCoefficient(g, 1), 1.0);
  EXPECT_DOUBLE_EQ(LocalClusteringCoefficient(g, 0), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(LocalClusteringCoefficient(g, 3), 0.0);
}

TEST(ClusteringTest, SampledApproximatesExact) {
  Graph g = gen::ErdosRenyiGnp(400, 0.04, 17);
  const double exact =
      AverageClusteringCoefficient(g, g.NumVertices(), 1);
  const double sampled = AverageClusteringCoefficient(g, 200, 2);
  EXPECT_NEAR(sampled, exact, 0.05);
}

TEST(DiameterTest, PathExact) {
  Graph g = gen::Path(10);
  EXPECT_EQ(ApproxDiameter(g, 4), 9u);
  EXPECT_EQ(Eccentricity(g, 0), 9u);
  EXPECT_EQ(Eccentricity(g, 4), 5u);
}

TEST(DiameterTest, CycleAtLeastHalf) {
  Graph g = gen::Cycle(12);
  EXPECT_EQ(ApproxDiameter(g, 0), 6u);
}

TEST(DiameterTest, CliqueIsOne) {
  Graph g = gen::Clique(7);
  EXPECT_EQ(ApproxDiameter(g, 3), 1u);
}

TEST(DiameterTest, StaysWithinComponent) {
  Graph g = BuildGraph(6, {{0, 1}, {1, 2}, {3, 4}});
  EXPECT_EQ(ApproxDiameter(g, 0), 2u);
  EXPECT_EQ(ApproxDiameter(g, 3), 1u);
  EXPECT_EQ(Eccentricity(g, 5), 0u);
}

}  // namespace
}  // namespace locs
