// Tests for local CSM (Algorithm 4): CSM2 and CSM1(γ→−∞) must be exact
// everywhere; finite γ trades quality for speed but never reports an
// invalid community.

#include "core/local_csm.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <map>

#include "core/global.h"
#include "gen/classic.h"
#include "graph/builder.h"
#include "gen/erdos_renyi.h"
#include "gen/lfr.h"
#include "graph/subgraph.h"
#include "test_util.h"

namespace locs {
namespace {

using testing::BruteForceCsmGoodness;
using testing::ToSet;

constexpr double kMinusInf = -std::numeric_limits<double>::infinity();

struct Config {
  CsmCandidateRule rule;
  double gamma;
};

std::string ConfigName(const ::testing::TestParamInfo<Config>& info) {
  std::string name = info.param.rule == CsmCandidateRule::kFromVisited
                         ? "CSM1"
                         : "CSM2";
  if (std::isinf(info.param.gamma)) {
    name += "_gammaNegInf";
  } else {
    name += "_gamma" + std::to_string(static_cast<int>(info.param.gamma));
  }
  return name;
}

class LocalCsmExactTest : public ::testing::TestWithParam<Config> {
 protected:
  Community Solve(const Graph& g, VertexId v0, QueryStats* stats = nullptr,
                  bool ordered = true) {
    const GraphFacts facts = GraphFacts::Compute(g);
    std::optional<OrderedAdjacency> oa;
    if (ordered) oa.emplace(g);
    LocalCsmSolver solver(g, oa ? &*oa : nullptr, &facts);
    CsmOptions options;
    options.candidate_rule = GetParam().rule;
    options.gamma = GetParam().gamma;
    return *solver.Solve(v0, options, stats);
  }
};

TEST_P(LocalCsmExactTest, Clique) {
  Graph g = gen::Clique(8);
  const Community best = Solve(g, 2);
  EXPECT_EQ(best.min_degree, 7u);
  EXPECT_EQ(best.members.size(), 8u);
}

TEST_P(LocalCsmExactTest, IsolatedVertex) {
  Graph g = BuildGraph(4, {{0, 1}});
  const Community best = Solve(g, 3);
  EXPECT_EQ(best.min_degree, 0u);
  EXPECT_EQ(best.members, std::vector<VertexId>{3});
}

TEST_P(LocalCsmExactTest, SingleEdge) {
  Graph g = BuildGraph(2, {{0, 1}});
  const Community best = Solve(g, 0);
  EXPECT_EQ(best.min_degree, 1u);
  EXPECT_EQ(ToSet(best.members), ToSet({0, 1}));
}

TEST_P(LocalCsmExactTest, PaperFigure1AllQueries) {
  // Expected m*(G, v) per vertex of the Figure 1 graph: the core numbers.
  Graph g = gen::PaperFigure1();
  auto v = [](char c) { return gen::Figure1Vertex(c); };
  const std::map<char, uint32_t> expected = {
      {'a', 3}, {'b', 3}, {'c', 3}, {'d', 3}, {'e', 3}, {'f', 2},
      {'g', 4}, {'h', 4}, {'i', 4}, {'j', 4}, {'k', 4}, {'l', 4},
      {'m', 1}, {'n', 1}};
  for (const auto& [label, m_star] : expected) {
    const Community best = Solve(g, v(label));
    EXPECT_EQ(best.min_degree, m_star) << label;
    EXPECT_TRUE(
        IsValidCommunity(g, best.members, v(label), best.min_degree));
  }
  // Example 4 / 6: the best community for a and e is V1.
  for (char c : {'a', 'e'}) {
    const Community best = Solve(g, v(c));
    EXPECT_EQ(ToSet(best.members),
              ToSet({v('a'), v('b'), v('c'), v('d'), v('e')}));
  }
}

TEST_P(LocalCsmExactTest, MatchesBruteForceOnTinyGraphs) {
  for (uint64_t seed : {3u, 7u, 19u, 57u}) {
    Graph g = gen::ErdosRenyiGnp(12, 0.3, seed);
    for (VertexId v0 = 0; v0 < g.NumVertices(); ++v0) {
      const Community best = Solve(g, v0);
      EXPECT_EQ(best.min_degree, BruteForceCsmGoodness(g, v0))
          << "seed=" << seed << " v0=" << v0;
      EXPECT_TRUE(IsValidCommunity(g, best.members, v0, best.min_degree));
    }
  }
}

TEST_P(LocalCsmExactTest, MatchesGlobalOnRandomGraphs) {
  for (uint64_t seed : {101u, 202u}) {
    Graph g = gen::ErdosRenyiGnp(150, 0.06, seed);
    for (VertexId v0 = 0; v0 < g.NumVertices(); v0 += 7) {
      const Community local = Solve(g, v0);
      const Community global = *GlobalCsm(g, v0);
      EXPECT_EQ(local.min_degree, global.min_degree)
          << "seed=" << seed << " v0=" << v0;
    }
  }
}

TEST_P(LocalCsmExactTest, MatchesGlobalOnLfr) {
  gen::LfrParams params;
  params.n = 500;
  params.min_degree = 4;
  params.max_degree = 25;
  params.min_community = 15;
  params.max_community = 60;
  params.seed = 31;
  const gen::LfrGraph lfr = gen::Lfr(params);
  for (VertexId v0 = 0; v0 < lfr.graph.NumVertices(); v0 += 23) {
    const Community local = Solve(lfr.graph, v0);
    const Community global = *GlobalCsm(lfr.graph, v0);
    EXPECT_EQ(local.min_degree, global.min_degree) << "v0=" << v0;
  }
}

TEST_P(LocalCsmExactTest, WorksWithoutOrderedAdjacency) {
  Graph g = gen::ErdosRenyiGnp(60, 0.12, 77);
  for (VertexId v0 = 0; v0 < g.NumVertices(); v0 += 11) {
    const Community with = Solve(g, v0, nullptr, /*ordered=*/true);
    const Community without = Solve(g, v0, nullptr, /*ordered=*/false);
    EXPECT_EQ(with.min_degree, without.min_degree);
  }
}

TEST_P(LocalCsmExactTest, RepeatedQueriesAreIndependent) {
  Graph g = gen::ErdosRenyiGnp(90, 0.08, 13);
  const GraphFacts facts = GraphFacts::Compute(g);
  LocalCsmSolver solver(g, nullptr, &facts);
  CsmOptions options;
  options.candidate_rule = GetParam().rule;
  options.gamma = GetParam().gamma;
  std::vector<uint32_t> first;
  for (VertexId v0 = 0; v0 < 30; ++v0) {
    first.push_back(solver.Solve(v0, options)->min_degree);
  }
  for (int round = 0; round < 3; ++round) {
    for (VertexId v0 = 0; v0 < 30; ++v0) {
      EXPECT_EQ(solver.Solve(v0, options)->min_degree, first[v0]);
    }
  }
}

// Exact configurations: CSM2 at any γ, CSM1 at γ → −∞ (Theorems 6, 7).
INSTANTIATE_TEST_SUITE_P(
    ExactConfigs, LocalCsmExactTest,
    ::testing::Values(Config{CsmCandidateRule::kFromNaive, 0.0},
                      Config{CsmCandidateRule::kFromNaive, 8.0},
                      Config{CsmCandidateRule::kFromNaive, kMinusInf},
                      Config{CsmCandidateRule::kFromVisited, kMinusInf}),
    ConfigName);

TEST(LocalCsmGammaTest, FiniteGammaNeverBeatsOptimum) {
  Graph g = gen::ErdosRenyiGnp(120, 0.08, 999);
  const GraphFacts facts = GraphFacts::Compute(g);
  LocalCsmSolver solver(g, nullptr, &facts);
  for (VertexId v0 = 0; v0 < g.NumVertices(); v0 += 9) {
    const Community global = *GlobalCsm(g, v0);
    for (double gamma : {0.0, 2.0, 6.0, 15.0}) {
      CsmOptions options;
      options.candidate_rule = CsmCandidateRule::kFromVisited;
      options.gamma = gamma;
      const Community local = *solver.Solve(v0, options);
      EXPECT_LE(local.min_degree, global.min_degree);
      EXPECT_TRUE(IsValidCommunity(g, local.members, v0, local.min_degree));
    }
  }
}

TEST(LocalCsmGammaTest, QualityIsMonotoneInBudgetOnAverage) {
  // Aggregate quality ratio r_a must not improve when γ grows (Figure 14's
  // downward trend). Compare the two extremes.
  Graph g = gen::ErdosRenyiGnp(300, 0.04, 4242);
  const GraphFacts facts = GraphFacts::Compute(g);
  LocalCsmSolver solver(g, nullptr, &facts);
  double sum_exact = 0.0;
  double sum_tight = 0.0;
  double sum_opt = 0.0;
  for (VertexId v0 = 0; v0 < g.NumVertices(); v0 += 13) {
    CsmOptions options;
    options.candidate_rule = CsmCandidateRule::kFromVisited;
    options.gamma = kMinusInf;
    sum_exact += solver.Solve(v0, options)->min_degree;
    options.gamma = 15.0;
    sum_tight += solver.Solve(v0, options)->min_degree;
    sum_opt += GlobalCsm(g, v0)->min_degree;
  }
  EXPECT_DOUBLE_EQ(sum_exact, sum_opt);  // Theorem 6
  EXPECT_LE(sum_tight, sum_exact + 1e-9);
}

TEST(LocalCsmStatsTest, Eq7EarlyExitSkipsMaxcore) {
  // In a clique, δ(G[H]) reaches deg(v0) during expansion, so the search
  // must return without the maxcore phase.
  Graph g = gen::Clique(12);
  const GraphFacts facts = GraphFacts::Compute(g);
  LocalCsmSolver solver(g, nullptr, &facts);
  QueryStats stats;
  const Community best = *solver.Solve(0, {}, &stats);
  EXPECT_EQ(best.min_degree, 11u);
  EXPECT_FALSE(stats.used_global_fallback);
}

TEST(LocalCsmStatsTest, VisitedStaysLocalOnBarbell) {
  // Query inside one K8 of a long-bridged barbell: the search must not
  // wander into the far clique once δ(H) = 7 is proven optimal via Eq. 7.
  Graph g = gen::Barbell(8, 30);
  const GraphFacts facts = GraphFacts::Compute(g);
  LocalCsmSolver solver(g, nullptr, &facts);
  QueryStats stats;
  const Community best = *solver.Solve(0, {}, &stats);
  EXPECT_EQ(best.min_degree, 7u);
  EXPECT_EQ(best.members.size(), 8u);
  EXPECT_LT(stats.visited_vertices, 12u);
}

}  // namespace
}  // namespace locs
