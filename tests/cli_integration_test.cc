// End-to-end integration test of the locs_cli binary: generate, stats,
// convert, decompose, and query via actual subprocess invocations.

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <string>

namespace locs {
namespace {

#ifndef LOCS_CLI_PATH
#define LOCS_CLI_PATH "locs_cli"
#endif

/// Runs the CLI with `args`, captures stdout, returns {exit_code, output}.
std::pair<int, std::string> RunCli(const std::string& args) {
  const std::string command =
      std::string(LOCS_CLI_PATH) + " " + args + " 2>/dev/null";
  std::FILE* pipe = ::popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  std::string output;
  std::array<char, 4096> buffer{};
  while (std::fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    output += buffer.data();
  }
  const int status = ::pclose(pipe);
  return {WEXITSTATUS(status), output};
}

/// Like RunCli, but with stderr folded into the captured output — for
/// asserting on diagnostics.
std::pair<int, std::string> RunCliMergedStderr(const std::string& args) {
  const std::string command =
      std::string(LOCS_CLI_PATH) + " " + args + " 2>&1";
  std::FILE* pipe = ::popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  std::string output;
  std::array<char, 4096> buffer{};
  while (std::fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    output += buffer.data();
  }
  const int status = ::pclose(pipe);
  return {WEXITSTATUS(status), output};
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(CliIntegrationTest, UsageOnNoArgs) {
  const auto [code, out] = RunCli("");
  EXPECT_NE(code, 0);
}

TEST(CliIntegrationTest, GenerateStatsQueryPipeline) {
  const std::string graph_path = TempPath("cli_pipeline.lcsg");
  {
    const auto [code, out] = RunCli(
        "generate --model=lfr --n=2000 --seed=5 --output=" + graph_path);
    ASSERT_EQ(code, 0) << out;
    EXPECT_NE(out.find("generated lfr graph"), std::string::npos);
  }
  {
    const auto [code, out] = RunCli("stats --input=" + graph_path);
    ASSERT_EQ(code, 0);
    EXPECT_NE(out.find("vertices"), std::string::npos);
    EXPECT_NE(out.find("2,000"), std::string::npos);
    EXPECT_NE(out.find("degeneracy"), std::string::npos);
  }
  {
    const auto [code, out] =
        RunCli("csm --input=" + graph_path + " --vertex=7");
    ASSERT_EQ(code, 0);
    EXPECT_NE(out.find("best community"), std::string::npos);
  }
  {
    const auto [code, out] =
        RunCli("cst --input=" + graph_path + " --vertex=7 --k=2");
    ASSERT_EQ(code, 0);
    EXPECT_TRUE(out.find("community:") != std::string::npos ||
                out.find("no community") != std::string::npos);
  }
  {
    const auto [code, out] =
        RunCli("decompose --input=" + graph_path + " --top=3");
    ASSERT_EQ(code, 0);
    EXPECT_NE(out.find("degeneracy"), std::string::npos);
    EXPECT_NE(out.find("k-shell"), std::string::npos);
  }
}

TEST(CliIntegrationTest, CompileRejectsAnAlreadyCompiledImage) {
  // Recompiling a .limg must fail with a clear diagnostic, not a
  // confusing edge-list parse error from feeding binary bytes to the
  // text loader.
  const std::string graph_path = TempPath("cli_recompile.lcsg");
  const std::string image_path = TempPath("cli_recompile.limg");
  ASSERT_EQ(RunCli("generate --model=gnp --n=60 --p=0.2 --seed=4 "
                   "--output=" +
                   graph_path)
                .first,
            0);
  ASSERT_EQ(RunCli("compile " + graph_path + " " + image_path).first, 0);
  const auto [code, out] = RunCliMergedStderr(
      "compile " + image_path + " " + TempPath("cli_recompile2.limg"));
  EXPECT_EQ(code, 2);
  EXPECT_NE(out.find("already a compiled graph image"), std::string::npos)
      << out;
}

TEST(CliIntegrationTest, UnopenableTraceFileIsAHardError) {
  // A --trace= path that cannot be opened must abort the run with the
  // typed open-error exit code — not run untraced with exit 0 and not
  // collapse into the generic failure code.
  const std::string graph_path = TempPath("cli_trace_err.lcsg");
  ASSERT_EQ(RunCli("generate --model=gnp --n=50 --p=0.2 --seed=9 --output=" +
                   graph_path)
                .first,
            0);
  const auto [code, out] =
      RunCli("cst --input=" + graph_path + " --vertex=1 --k=1 " +
             "--trace=/nonexistent-dir/trace.jsonl");
  EXPECT_EQ(code, 3);  // kExitOpenError
}

TEST(CliIntegrationTest, LocalAndGlobalAgreeOnGoodness) {
  const std::string graph_path = TempPath("cli_agree.lcsg");
  ASSERT_EQ(RunCli("generate --model=ba --n=1000 --m=4 --seed=3 --output=" +
                   graph_path)
                .first,
            0);
  const auto [code_l, local] =
      RunCli("csm --input=" + graph_path + " --vertex=11");
  const auto [code_g, global] =
      RunCli("csm --input=" + graph_path + " --vertex=11 --global");
  ASSERT_EQ(code_l, 0);
  ASSERT_EQ(code_g, 0);
  // Both report "δ=<value>"; the values must match.
  const auto delta_of = [](const std::string& text) {
    const size_t pos = text.find("δ=");
    EXPECT_NE(pos, std::string::npos);
    return text.substr(pos, text.find(' ', pos) - pos);
  };
  EXPECT_EQ(delta_of(local), delta_of(global));
}

TEST(CliIntegrationTest, ConvertRoundTripAcrossFormats) {
  const std::string binary_path = TempPath("cli_conv.lcsg");
  const std::string metis_path = TempPath("cli_conv.metis");
  const std::string edge_path = TempPath("cli_conv.txt");
  ASSERT_EQ(RunCli("generate --model=gnp --n=300 --p=0.05 --seed=2 "
                   "--output=" +
                   binary_path)
                .first,
            0);
  ASSERT_EQ(RunCli("convert --input=" + binary_path +
                   " --output=" + metis_path)
                .first,
            0);
  ASSERT_EQ(RunCli("convert --input=" + metis_path +
                   " --output=" + edge_path)
                .first,
            0);
  // All three report identical edge counts in stats.
  const auto edges_of = [](const std::string& path) {
    const auto [code, out] = RunCli("stats --input=" + path);
    EXPECT_EQ(code, 0);
    const size_t pos = out.find("edges");
    return out.substr(pos, out.find('\n', pos) - pos);
  };
  EXPECT_EQ(edges_of(binary_path), edges_of(metis_path));
}

TEST(CliIntegrationTest, BatchCommandRunsBothModes) {
  const std::string graph_path = TempPath("cli_batch.lcsg");
  ASSERT_EQ(RunCli("generate --model=lfr --n=1500 --seed=9 --output=" +
                   graph_path)
                .first,
            0);
  {
    const auto [code, out] = RunCli("batch --input=" + graph_path +
                                    " --mode=cst --k=3 --sample=50 "
                                    "--threads=4");
    ASSERT_EQ(code, 0) << out;
    EXPECT_NE(out.find("completed"), std::string::npos);
    EXPECT_NE(out.find("50"), std::string::npos);
    EXPECT_NE(out.find("batch wall ms"), std::string::npos);
  }
  {
    // Explicit query file with comments; --show-results prints one
    // "vertex goodness" line per completed query.
    const std::string queries_path = TempPath("cli_batch_queries.txt");
    {
      std::ofstream out(queries_path);
      out << "# query vertices\n3\n5\n8\n";
    }
    const auto [code, out] = RunCli(
        "batch --input=" + graph_path + " --mode=csm --queries-file=" +
        queries_path + " --show-results");
    ASSERT_EQ(code, 0) << out;
    EXPECT_NE(out.find("completed"), std::string::npos);
    EXPECT_NE(out.find("\n3 "), std::string::npos);
    EXPECT_NE(out.find("\n5 "), std::string::npos);
    EXPECT_NE(out.find("\n8 "), std::string::npos);
  }
  // Out-of-range vertex in the query file is a clean error.
  {
    const std::string bad_path = TempPath("cli_batch_bad.txt");
    {
      std::ofstream out(bad_path);
      out << "999999999\n";
    }
    EXPECT_NE(RunCli("batch --input=" + graph_path +
                     " --queries-file=" + bad_path)
                  .first,
              0);
  }
}

TEST(CliIntegrationTest, UnknownCommandHasDistinctExitAndStderr) {
  // Unknown subcommands are a user error distinct from the generic
  // usage failure: named on stderr, exit code 64.
  const std::string command = std::string(LOCS_CLI_PATH) +
                              " frobnicate 2>&1 1>/dev/null";
  std::FILE* pipe = ::popen(command.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  std::string err;
  std::array<char, 4096> buffer{};
  while (std::fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    err += buffer.data();
  }
  const int code = WEXITSTATUS(::pclose(pipe));
  EXPECT_EQ(code, 64);
  EXPECT_NE(err.find("unknown command 'frobnicate'"), std::string::npos)
      << err;
  // The usage path (no arguments) keeps its own exit code.
  EXPECT_NE(RunCli("").first, 64);
}

TEST(CliIntegrationTest, ErrorsAreClean) {
  EXPECT_NE(RunCli("stats --input=/nonexistent/graph").first, 0);
  EXPECT_NE(RunCli("frobnicate").first, 0);
  EXPECT_NE(RunCli("generate --model=unknown --output=/tmp/x").first, 0);
}

}  // namespace
}  // namespace locs
