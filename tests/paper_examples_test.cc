// One test per worked example in the paper (Examples 1-9), all evaluated
// on the reconstructed Figure 1 graph. Deviations forced by internal
// inconsistencies of the paper are documented in gen/classic.h and
// asserted here as reconstructed.

#include <gtest/gtest.h>

#include "core/baseline.h"
#include "core/bounds.h"
#include "core/global.h"
#include "core/kcore.h"
#include "core/local_cst.h"
#include "gen/classic.h"
#include "graph/subgraph.h"
#include "test_util.h"

namespace locs {
namespace {

using testing::BruteForceCsmGoodness;
using testing::ToSet;

class PaperExamplesTest : public ::testing::Test {
 protected:
  PaperExamplesTest() : g_(gen::PaperFigure1()) {}

  static VertexId V(char c) { return gen::Figure1Vertex(c); }
  static std::vector<VertexId> Set(const std::string& labels) {
    std::vector<VertexId> out;
    for (char c : labels) out.push_back(V(c));
    return out;
  }

  Graph g_;
};

TEST_F(PaperExamplesTest, Example1MinimumDegreeVsAverageDegree) {
  // δ(G[V1]) = 3 for V1 = {a,b,c,d,e}; including f drops δ to 1.
  EXPECT_EQ(MinDegreeOfInduced(g_, Set("abcde")), 3u);
  EXPECT_EQ(MinDegreeOfInduced(g_, Set("abcdef")), 1u);
  // Average degree prefers the merged set V1 ∪ {f} ∪ V2 over V1 alone —
  // the behaviour the paper argues against.
  const auto avg = [this](const std::vector<VertexId>& members) {
    const MappedSubgraph sub = InducedSubgraph(g_, members);
    return sub.graph.AverageDegree();
  };
  EXPECT_GT(avg(Set("abcdefghijkl")), avg(Set("abcde")));
  // V1 and V2 connect only through f (the weak link).
  EXPECT_FALSE(IsConnectedSubset(g_, Set("abcdeghijkl")));
  EXPECT_TRUE(IsConnectedSubset(g_, Set("abcdefghijkl")));
}

TEST_F(PaperExamplesTest, Example2GlobalSearchForJ) {
  // Greedy deletion answers the best community for j. (The paper's listed
  // V' = {g,h,i,j,k} omits l, contradicting its own Example 5; we follow
  // Example 5: the answer is the 4-core component {g..l}.)
  const Community best = GreedyGlobalCsm(g_, V('j'));
  EXPECT_EQ(best.min_degree, 4u);
  EXPECT_EQ(ToSet(best.members), ToSet(Set("ghijkl")));
  // m and n are among the first vertices the greedy removes: both have
  // degree <= 2 and survive in no 2-core... verify via core numbers.
  const CoreDecomposition cores = ComputeCores(g_);
  EXPECT_LE(cores.core[V('m')], 1u);
  EXPECT_LE(cores.core[V('n')], 1u);
}

TEST_F(PaperExamplesTest, Example3NonMonotonicity) {
  // S = {a,b,d,e} (a's closed neighborhood): δ = 2. Adding c raises δ to
  // 3; adding f lowers it to 1 — δ is not monotonic in the vertex set.
  EXPECT_EQ(MinDegreeOfInduced(g_, Set("abde")), 2u);
  EXPECT_EQ(MinDegreeOfInduced(g_, Set("abdec")), 3u);
  EXPECT_EQ(MinDegreeOfInduced(g_, Set("abdef")), 1u);
}

TEST_F(PaperExamplesTest, Example4CsmAndCstForA) {
  // CSM: H = {a,b,c,d,e} with δ = 3 and no better choice exists.
  EXPECT_EQ(BruteForceCsmGoodness(g_, V('a')), 3u);
  const Community best = *GlobalCsm(g_, V('a'));
  EXPECT_EQ(best.min_degree, 3u);
  EXPECT_EQ(ToSet(best.members), ToSet(Set("abcde")));
  // CST(3): still H. CST(2): multiple valid choices, including the
  // paper's {a,b,d}, {a,d,e}, {a,b,c,d,e}.
  for (const auto& labels : {"abd", "ade", "abcde"}) {
    EXPECT_TRUE(IsValidCommunity(g_, Set(labels), V('a'), 2)) << labels;
  }
}

TEST_F(PaperExamplesTest, Example5CoresAndMaxcore) {
  const CoreDecomposition cores = ComputeCores(g_);
  // 3-core = {a..e, g..l}; 4-core = maximum core = {g..l}.
  EXPECT_EQ(ToSet(KCoreMembers(cores, 3)), ToSet(Set("abcdeghijkl")));
  EXPECT_EQ(ToSet(KCoreMembers(cores, 4)), ToSet(Set("ghijkl")));
  EXPECT_EQ(cores.degeneracy, 4u);
  // maxcore(G, e) = the subgraph induced by {a,b,c,d,e}.
  EXPECT_EQ(ToSet(MaxCoreComponentOf(g_, cores, V('e'))),
            ToSet(Set("abcde")));
}

TEST_F(PaperExamplesTest, Example6AdmissibleSets) {
  // CSM for e: m* = 3 with the unique H* = {a..e} — the admissible set.
  EXPECT_EQ(BruteForceCsmGoodness(g_, V('e')), 3u);
  EXPECT_EQ(ToSet(GlobalCsm(g_, V('e'))->members), ToSet(Set("abcde")));
  // CST(2) for e: the maximal answer (hence admissible set) is V-{m,n}.
  const auto cst2 = GlobalCst(g_, V('e'), 2);
  ASSERT_TRUE(cst2.has_value());
  EXPECT_EQ(ToSet(cst2->members), ToSet(Set("abcdefghijkl")));
  // m and n belong to no CST(2) answer: every H containing them fails.
  EXPECT_FALSE(GlobalCst(g_, V('m'), 2).has_value());
  EXPECT_FALSE(GlobalCst(g_, V('n'), 2).has_value());
}

TEST_F(PaperExamplesTest, Example7NaiveVsIntelligentSelection) {
  const GraphFacts facts = GraphFacts::Compute(g_);
  LocalCstSolver solver(g_, nullptr, &facts);
  // Naive FIFO: enqueues f early (degree 3 >= k), never qualifies, and
  // exhausts all 12 eligible vertices before the fallback answers.
  CstOptions naive;
  naive.strategy = Strategy::kNaive;
  QueryStats stats;
  auto result = solver.Solve(V('e'), 3, naive, &stats);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(stats.visited_vertices, 12u);
  EXPECT_TRUE(stats.used_global_fallback);
  // Intelligent (li): 5 steps, exactly the Figure 4(b) trace.
  CstOptions li;
  li.strategy = Strategy::kLI;
  result = solver.Solve(V('e'), 3, li, &stats);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(stats.visited_vertices, 5u);
  EXPECT_FALSE(stats.used_global_fallback);
  EXPECT_EQ(ToSet(result->members), ToSet(Set("abcde")));
}

TEST_F(PaperExamplesTest, Example8HardnessOfSelection) {
  // Even li can be forced through f (it ties with a,c,d at incidence 1
  // when C = {e}); whatever order ties resolve in, correctness holds via
  // the fallback — verified by solving from every vertex at every k.
  const GraphFacts facts = GraphFacts::Compute(g_);
  LocalCstSolver solver(g_, nullptr, &facts);
  for (VertexId v0 = 0; v0 < g_.NumVertices(); ++v0) {
    for (uint32_t k = 1; k <= 5; ++k) {
      const auto local = solver.Solve(v0, k);
      const auto global = GlobalCst(g_, v0, k);
      EXPECT_EQ(local.has_value(), global.has_value())
          << "v0=" << v0 << " k=" << k;
    }
  }
}

TEST_F(PaperExamplesTest, Example9LiBucketState) {
  // After C = {e, a}: f(b) = f(c) = f(f) = 1 and f(d) = 2 — d pops next.
  // Reproduced through the public solver: with query e and k = 3, li's
  // third pick is d (Figure 4(b) step 3); asserted indirectly through the
  // 5-step trace of Example 7. Here we assert the incidence counts
  // directly on the Figure-5 structure.
  EpochBucketList buckets(g_.NumVertices(), g_.MaxDegree() + 1);
  auto add_neighbors = [&](VertexId v, const std::vector<VertexId>& in_c) {
    for (VertexId w : g_.Neighbors(v)) {
      bool is_member = false;
      for (VertexId m : in_c) is_member |= m == w;
      if (is_member) continue;
      if (buckets.Contains(w)) {
        buckets.Increment(w);
      } else {
        buckets.Insert(w, 1);
      }
    }
  };
  add_neighbors(V('e'), {V('e'), V('a')});
  add_neighbors(V('a'), {V('e'), V('a')});
  EXPECT_EQ(buckets.Key(V('b')), 1u);
  EXPECT_EQ(buckets.Key(V('c')), 1u);
  EXPECT_EQ(buckets.Key(V('f')), 1u);
  EXPECT_EQ(buckets.Key(V('d')), 2u);
  EXPECT_EQ(buckets.PopMax(), V('d'));
}

TEST_F(PaperExamplesTest, Figure2ExponentialSolutionCount) {
  // The star of Figure 2: m*(G, center) = 1 and any edge answers — the
  // reason both problems return a single solution.
  Graph star = gen::Star(12);
  EXPECT_EQ(GlobalCsm(star, 0)->min_degree, 1u);
  const GraphFacts facts = GraphFacts::Compute(star);
  LocalCstSolver solver(star, nullptr, &facts);
  const auto cst1 = solver.Solve(0, 1);
  ASSERT_TRUE(cst1.has_value());
  EXPECT_EQ(cst1->members.size(), 2u);  // one edge suffices
}

TEST_F(PaperExamplesTest, Theorem3BoundOnFigure1) {
  // |E| = 26, |V| = 14 -> bound 5; all m* values are <= 4.
  EXPECT_EQ(MStarUpperBound(g_), 5u);
  for (VertexId v0 = 0; v0 < g_.NumVertices(); ++v0) {
    EXPECT_LE(GlobalCsm(g_, v0)->min_degree, 5u);
  }
}

}  // namespace
}  // namespace locs
