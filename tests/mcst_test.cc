// Tests for the mCST solvers (exact branch-and-bound, greedy shrink, and
// the Lemma-1 clique shortcut).

#include "core/mcst.h"

#include <gtest/gtest.h>

#include "gen/classic.h"
#include "gen/erdos_renyi.h"
#include "graph/builder.h"
#include "graph/subgraph.h"
#include "test_util.h"

namespace locs {
namespace {

using testing::BruteForceMcstSize;

constexpr uint64_t kPlenty = 1u << 22;

TEST(FindCliqueThroughTest, TriangleInCycleWithChord) {
  Graph g = BuildGraph(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}});
  const auto clique = FindCliqueThrough(g, 0, 3, kPlenty);
  ASSERT_TRUE(clique.has_value());
  EXPECT_EQ(clique->size(), 3u);
  EXPECT_TRUE(IsConnectedSubset(g, *clique));
  EXPECT_EQ(MinDegreeOfInduced(g, *clique), 2u);
}

TEST(FindCliqueThroughTest, NoCliqueInBipartite) {
  Graph g = gen::CompleteBipartite(4, 4);
  EXPECT_FALSE(FindCliqueThrough(g, 0, 3, kPlenty).has_value());
}

TEST(FindCliqueThroughTest, FullCliqueFound) {
  Graph g = gen::Clique(7);
  const auto clique = FindCliqueThrough(g, 2, 7, kPlenty);
  ASSERT_TRUE(clique.has_value());
  EXPECT_EQ(clique->size(), 7u);
}

TEST(FindCliqueThroughTest, DegreePruning) {
  Graph g = gen::Star(10);
  EXPECT_FALSE(FindCliqueThrough(g, 1, 3, kPlenty).has_value());
}

TEST(GreedyMcstTest, InfeasibleReturnsNull) {
  Graph g = gen::Path(5);
  EXPECT_FALSE(GreedyMcst(g, 2, 2).has_value());
}

TEST(GreedyMcstTest, ResultIsValidAndMinimal) {
  for (uint64_t seed : {1u, 5u, 9u}) {
    Graph g = gen::ErdosRenyiGnp(40, 0.18, seed);
    for (VertexId v0 = 0; v0 < g.NumVertices(); v0 += 5) {
      for (uint32_t k = 2; k <= 4; ++k) {
        const auto result = GreedyMcst(g, v0, k);
        if (!result.has_value()) continue;
        EXPECT_TRUE(IsValidCommunity(g, result->members, v0, k));
        // Inclusion-minimality: removing any single vertex breaks it.
        for (VertexId victim : result->members) {
          if (victim == v0) continue;
          std::vector<VertexId> rest;
          for (VertexId m : result->members) {
            if (m != victim) rest.push_back(m);
          }
          EXPECT_FALSE(IsValidCommunity(g, rest, v0, k));
        }
      }
    }
  }
}

TEST(ExactMcstTest, PaperLemma1CliqueIsOptimal) {
  // K4 hanging off a larger sparse structure: mCST(3) = the K4.
  GraphBuilder builder(10);
  for (VertexId u = 0; u < 4; ++u) {
    for (VertexId v = u + 1; v < 4; ++v) builder.AddEdge(u, v);
  }
  builder.AddEdge(3, 4);
  builder.AddEdge(4, 5);
  Graph g = builder.Build();
  const McstResult result = ExactMcst(g, 0, 3, kPlenty);
  ASSERT_TRUE(result.community.has_value());
  EXPECT_EQ(result.community->members.size(), 4u);
  EXPECT_FALSE(result.budget_exhausted);
}

TEST(ExactMcstTest, MatchesBruteForceOnTinyGraphs) {
  for (uint64_t seed : {2u, 4u, 8u, 16u}) {
    Graph g = gen::ErdosRenyiGnp(11, 0.35, seed);
    for (VertexId v0 = 0; v0 < g.NumVertices(); v0 += 2) {
      for (uint32_t k = 1; k <= 4; ++k) {
        const size_t expect = BruteForceMcstSize(g, v0, k);
        const McstResult result = ExactMcst(g, v0, k, kPlenty);
        ASSERT_FALSE(result.budget_exhausted)
            << "seed=" << seed << " v0=" << v0 << " k=" << k;
        if (expect == 0) {
          EXPECT_FALSE(result.community.has_value());
        } else {
          ASSERT_TRUE(result.community.has_value());
          EXPECT_EQ(result.community->members.size(), expect)
              << "seed=" << seed << " v0=" << v0 << " k=" << k;
          EXPECT_TRUE(
              IsValidCommunity(g, result.community->members, v0, k));
        }
      }
    }
  }
}

TEST(ExactMcstTest, ThresholdZeroIsSingleton) {
  Graph g = gen::Cycle(6);
  const McstResult result = ExactMcst(g, 3, 0, kPlenty);
  ASSERT_TRUE(result.community.has_value());
  EXPECT_EQ(result.community->members.size(), 1u);
}

TEST(ExactMcstTest, CycleNeedsWholeCycleForK2) {
  // On a pure cycle, the only min-degree-2 community is the whole cycle.
  Graph g = gen::Cycle(7);
  const McstResult result = ExactMcst(g, 0, 2, kPlenty);
  ASSERT_TRUE(result.community.has_value());
  EXPECT_EQ(result.community->members.size(), 7u);
}

TEST(ExactMcstTest, BudgetExhaustionFallsBackToGreedy) {
  Graph g = gen::ErdosRenyiGnp(40, 0.25, 3);
  const McstResult result = ExactMcst(g, 0, 5, /*max_steps=*/16);
  if (result.community.has_value()) {
    EXPECT_TRUE(IsValidCommunity(g, result.community->members, 0, 5));
  }
}

}  // namespace
}  // namespace locs
