// Tests for the local CST framework (§4): all three candidate-selection
// strategies, with and without the ordered-adjacency optimization, must
// agree with global search on feasibility, and every returned community
// must be valid. Includes the paper's worked examples.

#include "core/local_cst.h"

#include <gtest/gtest.h>

#include "core/global.h"
#include "gen/classic.h"
#include "graph/builder.h"
#include "gen/erdos_renyi.h"
#include "gen/lfr.h"
#include "gen/powerlaw.h"
#include "graph/subgraph.h"
#include "test_util.h"

namespace locs {
namespace {

using testing::ToSet;

struct Config {
  Strategy strategy;
  bool ordered;
};

std::string ConfigName(const ::testing::TestParamInfo<Config>& info) {
  std::string name(StrategyName(info.param.strategy));
  name += info.param.ordered ? "_ordered" : "_plain";
  return name;
}

class LocalCstStrategyTest : public ::testing::TestWithParam<Config> {
 protected:
  SearchResult Solve(const Graph& g, VertexId v0, uint32_t k,
                     QueryStats* stats = nullptr) {
    const GraphFacts facts = GraphFacts::Compute(g);
    std::optional<OrderedAdjacency> ordered;
    if (GetParam().ordered) ordered.emplace(g);
    LocalCstSolver solver(g, ordered ? &*ordered : nullptr, &facts);
    CstOptions options;
    options.strategy = GetParam().strategy;
    options.use_ordered_adjacency = GetParam().ordered;
    return solver.Solve(v0, k, options, stats);
  }
};

TEST_P(LocalCstStrategyTest, CliqueAllThresholds) {
  Graph g = gen::Clique(7);
  for (uint32_t k = 0; k <= 6; ++k) {
    const auto result = Solve(g, 3, k);
    ASSERT_TRUE(result.has_value()) << "k=" << k;
    EXPECT_TRUE(IsValidCommunity(g, result->members, 3, k));
  }
  EXPECT_FALSE(Solve(g, 3, 7).has_value());
}

TEST_P(LocalCstStrategyTest, ThresholdZeroIsSingleton) {
  Graph g = gen::Path(5);
  const auto result = Solve(g, 2, 0);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->members, std::vector<VertexId>{2});
}

TEST_P(LocalCstStrategyTest, LowDegreeQueryRejectedImmediately) {
  Graph g = gen::Star(10);
  QueryStats stats;
  EXPECT_FALSE(Solve(g, 1, 2, &stats).has_value());
  EXPECT_EQ(stats.visited_vertices, 0u);  // Proposition 3 pruning
}

TEST_P(LocalCstStrategyTest, PaperFigure1QueryA) {
  Graph g = gen::PaperFigure1();
  auto v = [](char c) { return gen::Figure1Vertex(c); };
  const auto cst3 = Solve(g, v('a'), 3);
  ASSERT_TRUE(cst3.has_value());
  // {a,b,c,d,e} is the unique CST(3) answer for a (Example 4).
  EXPECT_EQ(ToSet(cst3->members),
            ToSet({v('a'), v('b'), v('c'), v('d'), v('e')}));
  const auto cst2 = Solve(g, v('a'), 2);
  ASSERT_TRUE(cst2.has_value());
  EXPECT_TRUE(IsValidCommunity(g, cst2->members, v('a'), 2));
  EXPECT_FALSE(Solve(g, v('a'), 4).has_value());
}

TEST_P(LocalCstStrategyTest, PaperFigure1QueryE) {
  // Example 7's setting: query e with k = 3.
  Graph g = gen::PaperFigure1();
  auto v = [](char c) { return gen::Figure1Vertex(c); };
  QueryStats stats;
  const auto result = Solve(g, v('e'), 3, &stats);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(IsValidCommunity(g, result->members, v('e'), 3));
  EXPECT_GE(result->min_degree, 3u);
}

TEST_P(LocalCstStrategyTest, PaperFigure1QueryG4Core) {
  // CST(4) for g: any valid answer is a subset of the 4-core {g,...,l}
  // (Lemma 3); local search may legitimately stop at the inner K5.
  Graph g = gen::PaperFigure1();
  auto v = [](char c) { return gen::Figure1Vertex(c); };
  const auto result = Solve(g, v('g'), 4);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(IsValidCommunity(g, result->members, v('g'), 4));
  const auto four_core =
      ToSet({v('g'), v('h'), v('i'), v('j'), v('k'), v('l')});
  for (VertexId member : result->members) {
    EXPECT_TRUE(four_core.count(member) > 0);
  }
}

TEST_P(LocalCstStrategyTest, DisconnectedGraphStaysInComponent) {
  // Two K4s, no connection: a query in one must never see the other.
  GraphBuilder builder(8);
  for (VertexId u = 0; u < 4; ++u) {
    for (VertexId v = u + 1; v < 4; ++v) {
      builder.AddEdge(u, v);
      builder.AddEdge(u + 4, v + 4);
    }
  }
  Graph g = builder.Build();
  const auto result = Solve(g, 0, 3);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(ToSet(result->members), ToSet({0, 1, 2, 3}));
  // The Theorem-3 bound must not mis-prune disconnected graphs: global
  // excess is 12-8=4 => bound floor((1+sqrt(41))/2)=3, achievable here.
  EXPECT_TRUE(Solve(g, 4, 3).has_value());
}

TEST_P(LocalCstStrategyTest, BridgeVertexNeedsFallback) {
  // Query f in Figure 1 with k = 2: every early candidate set that
  // includes f's tail fails, exercising the global-fallback path.
  Graph g = gen::PaperFigure1();
  auto v = [](char c) { return gen::Figure1Vertex(c); };
  const auto result = Solve(g, v('f'), 2);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(IsValidCommunity(g, result->members, v('f'), 2));
}

TEST_P(LocalCstStrategyTest, InfeasibleQueryReturnsNullAfterExhaustion) {
  // Star center has high degree but no 2-connected neighborhood.
  Graph g = gen::Star(30);
  QueryStats stats;
  EXPECT_FALSE(Solve(g, 0, 2, &stats).has_value());
}

TEST_P(LocalCstStrategyTest, AgreesWithGlobalOnRandomGraphs) {
  for (uint64_t seed : {11u, 22u, 33u, 44u}) {
    Graph g = gen::ErdosRenyiGnp(60, 0.12, seed);
    for (VertexId v0 = 0; v0 < g.NumVertices(); v0 += 5) {
      for (uint32_t k = 1; k <= 8; ++k) {
        const auto local = Solve(g, v0, k);
        const auto global = GlobalCst(g, v0, k);
        ASSERT_EQ(local.has_value(), global.has_value())
            << "seed=" << seed << " v0=" << v0 << " k=" << k;
        if (local.has_value()) {
          EXPECT_TRUE(IsValidCommunity(g, local->members, v0, k));
          EXPECT_GE(local->min_degree, k);
          // The local answer is never larger than the maximal (global)
          // answer (Lemma 3: every solution is a subset of Ck).
          EXPECT_LE(local->members.size(), global->members.size());
        }
      }
    }
  }
}

TEST_P(LocalCstStrategyTest, AgreesWithGlobalOnLfr) {
  gen::LfrParams params;
  params.n = 400;
  params.min_degree = 4;
  params.max_degree = 30;
  params.min_community = 15;
  params.max_community = 80;
  params.seed = 2024;
  const gen::LfrGraph lfr = gen::Lfr(params);
  const Graph& g = lfr.graph;
  for (VertexId v0 = 0; v0 < g.NumVertices(); v0 += 29) {
    for (uint32_t k : {2u, 4u, 6u, 10u}) {
      const auto local = Solve(g, v0, k);
      const auto global = GlobalCst(g, v0, k);
      ASSERT_EQ(local.has_value(), global.has_value())
          << "v0=" << v0 << " k=" << k;
      if (local.has_value()) {
        EXPECT_TRUE(IsValidCommunity(g, local->members, v0, k));
      }
    }
  }
}

TEST_P(LocalCstStrategyTest, VisitedNeverExceedsEligibleVertices) {
  // n' <= |V>=k| (§4.2.3's tighter candidate bound).
  Graph g = gen::PowerLawGraph(500, 2.0, 2, 40, 99);
  const uint32_t k = 5;
  uint64_t eligible = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    eligible += g.Degree(v) >= k;
  }
  for (VertexId v0 = 0; v0 < g.NumVertices(); v0 += 61) {
    if (g.Degree(v0) < k) continue;
    QueryStats stats;
    Solve(g, v0, k, &stats);
    EXPECT_LE(stats.visited_vertices, eligible);
  }
}

TEST_P(LocalCstStrategyTest, RepeatedQueriesAreIndependent) {
  // The epoch-reset machinery must give identical answers across repeats
  // and across interleaved different queries.
  Graph g = gen::ErdosRenyiGnp(80, 0.1, 5);
  const GraphFacts facts = GraphFacts::Compute(g);
  std::optional<OrderedAdjacency> ordered;
  if (GetParam().ordered) ordered.emplace(g);
  LocalCstSolver solver(g, ordered ? &*ordered : nullptr, &facts);
  CstOptions options;
  options.strategy = GetParam().strategy;
  options.use_ordered_adjacency = GetParam().ordered;

  std::vector<SearchResult> first;
  for (VertexId v0 = 0; v0 < 20; ++v0) {
    first.push_back(solver.Solve(v0, 3, options));
  }
  for (int round = 0; round < 3; ++round) {
    for (VertexId v0 = 0; v0 < 20; ++v0) {
      const auto again = solver.Solve(v0, 3, options);
      ASSERT_EQ(again.has_value(), first[v0].has_value());
      if (again.has_value()) {
        EXPECT_EQ(ToSet(again->members), ToSet(first[v0]->members));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, LocalCstStrategyTest,
    ::testing::Values(Config{Strategy::kNaive, false},
                      Config{Strategy::kNaive, true},
                      Config{Strategy::kLG, false},
                      Config{Strategy::kLG, true},
                      Config{Strategy::kLI, false},
                      Config{Strategy::kLI, true}),
    ConfigName);

TEST(LocalCstLiTest, PaperExample7IntelligentSelection) {
  // With li selection and lowest-id tie-breaking, the query e / CST(3)
  // search finds {e,a,d,b,c} in 5 steps (Figure 4(b)).
  Graph g = gen::PaperFigure1();
  auto v = [](char c) { return gen::Figure1Vertex(c); };
  const GraphFacts facts = GraphFacts::Compute(g);
  LocalCstSolver solver(g, nullptr, &facts);
  CstOptions options;
  options.strategy = Strategy::kLI;
  QueryStats stats;
  const auto result = solver.Solve(v('e'), 3, options, &stats);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(ToSet(result->members),
            ToSet({v('a'), v('b'), v('c'), v('d'), v('e')}));
  EXPECT_EQ(stats.visited_vertices, 5u);
  EXPECT_FALSE(stats.used_global_fallback);
}

TEST(LocalCstNaiveTest, PaperExample7NaiveExhaustsCandidates) {
  // Naive FIFO selection admits f early and must exhaust all 12 eligible
  // vertices (V - {m,n}) before the global fallback resolves the query.
  Graph g = gen::PaperFigure1();
  auto v = [](char c) { return gen::Figure1Vertex(c); };
  const GraphFacts facts = GraphFacts::Compute(g);
  LocalCstSolver solver(g, nullptr, &facts);
  CstOptions options;
  options.strategy = Strategy::kNaive;
  QueryStats stats;
  const auto result = solver.Solve(v('e'), 3, options, &stats);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(ToSet(result->members),
            ToSet({v('a'), v('b'), v('c'), v('d'), v('e')}));
  EXPECT_EQ(stats.visited_vertices, 12u);
  EXPECT_TRUE(stats.used_global_fallback);
}

TEST(LocalCstStatsTest, FallbackFlagFalseOnDirectHit) {
  Graph g = gen::Clique(10);
  const GraphFacts facts = GraphFacts::Compute(g);
  LocalCstSolver solver(g, nullptr, &facts);
  QueryStats stats;
  ASSERT_TRUE(solver.Solve(0, 4, {}, &stats).has_value());
  EXPECT_FALSE(stats.used_global_fallback);
  EXPECT_EQ(stats.answer_size, 5u);  // li stops as soon as δ(C) reaches 4
}

}  // namespace
}  // namespace locs
