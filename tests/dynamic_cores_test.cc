// Tests for incremental core maintenance: every insertion/deletion must
// leave core numbers identical to a from-scratch decomposition of the
// current graph — verified exhaustively by differential fuzzing.

#include "core/dynamic_cores.h"

#include <gtest/gtest.h>

#include <set>

#include "core/kcore.h"
#include "gen/classic.h"
#include "gen/erdos_renyi.h"
#include "util/rng.h"

namespace locs {
namespace {

void ExpectCoresMatchRecompute(const DynamicCores& dynamic,
                               const char* context) {
  const Graph snapshot = dynamic.Freeze();
  const CoreDecomposition expect = ComputeCores(snapshot);
  for (VertexId v = 0; v < snapshot.NumVertices(); ++v) {
    ASSERT_EQ(dynamic.CoreNumber(v), expect.core[v])
        << context << " vertex " << v;
  }
  ASSERT_EQ(dynamic.Degeneracy(), expect.degeneracy) << context;
}

TEST(DynamicCoresTest, BuildTriangleIncrementally) {
  DynamicCores g(3);
  EXPECT_EQ(g.CoreNumber(0), 0u);
  g.AddEdge(0, 1);
  EXPECT_EQ(g.CoreNumber(0), 1u);
  EXPECT_EQ(g.CoreNumber(1), 1u);
  EXPECT_EQ(g.CoreNumber(2), 0u);
  g.AddEdge(1, 2);
  EXPECT_EQ(g.CoreNumber(2), 1u);
  g.AddEdge(0, 2);  // closes the triangle: everyone rises to 2
  for (VertexId v = 0; v < 3; ++v) EXPECT_EQ(g.CoreNumber(v), 2u);
  g.RemoveEdge(0, 1);  // back to a path: everyone sinks to 1
  for (VertexId v = 0; v < 3; ++v) EXPECT_EQ(g.CoreNumber(v), 1u);
}

TEST(DynamicCoresTest, DuplicateAndSelfLoopRejected) {
  DynamicCores g(3);
  EXPECT_TRUE(g.AddEdge(0, 1));
  EXPECT_FALSE(g.AddEdge(1, 0));
  EXPECT_FALSE(g.AddEdge(2, 2));
  EXPECT_FALSE(g.RemoveEdge(0, 2));
  EXPECT_EQ(g.NumEdges(), 1u);
}

TEST(DynamicCoresTest, FromGraphMatchesStatic) {
  Graph base = gen::PaperFigure1();
  DynamicCores dynamic(base);
  const CoreDecomposition expect = ComputeCores(base);
  for (VertexId v = 0; v < base.NumVertices(); ++v) {
    EXPECT_EQ(dynamic.CoreNumber(v), expect.core[v]);
  }
}

TEST(DynamicCoresTest, PaperFigure1EdgePlay) {
  // Removing the weak link e-f splits V1 from V2; re-adding restores the
  // exact original cores.
  DynamicCores g(gen::PaperFigure1());
  auto v = [](char c) { return gen::Figure1Vertex(c); };
  const uint32_t f_before = g.CoreNumber(v('f'));
  ASSERT_TRUE(g.RemoveEdge(v('e'), v('f')));
  ExpectCoresMatchRecompute(g, "after e-f removal");
  ASSERT_TRUE(g.AddEdge(v('e'), v('f')));
  ExpectCoresMatchRecompute(g, "after e-f restore");
  EXPECT_EQ(g.CoreNumber(v('f')), f_before);
}

TEST(DynamicCoresTest, CliqueGrowAndShrink) {
  constexpr VertexId kN = 8;
  DynamicCores g(kN);
  for (VertexId u = 0; u < kN; ++u) {
    for (VertexId v = u + 1; v < kN; ++v) {
      g.AddEdge(u, v);
      ExpectCoresMatchRecompute(g, "growing clique");
    }
  }
  EXPECT_EQ(g.Degeneracy(), kN - 1);
  for (VertexId u = 0; u < kN; ++u) {
    for (VertexId v = u + 1; v < kN; ++v) {
      g.RemoveEdge(u, v);
      ExpectCoresMatchRecompute(g, "shrinking clique");
    }
  }
  EXPECT_EQ(g.Degeneracy(), 0u);
}

class DynamicCoresFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DynamicCoresFuzzTest, DifferentialAgainstRecompute) {
  constexpr VertexId kN = 24;
  Rng rng(GetParam());
  DynamicCores dynamic(kN);
  std::set<std::pair<VertexId, VertexId>> edges;
  for (int op = 0; op < 400; ++op) {
    auto u = static_cast<VertexId>(rng.Below(kN));
    auto v = static_cast<VertexId>(rng.Below(kN));
    if (u > v) std::swap(u, v);
    if (u == v) continue;
    if (rng.Chance(0.65)) {
      if (dynamic.AddEdge(u, v)) edges.emplace(u, v);
    } else {
      if (dynamic.RemoveEdge(u, v)) edges.erase({u, v});
    }
    ASSERT_EQ(dynamic.NumEdges(), edges.size());
    ASSERT_NO_FATAL_FAILURE(
        ExpectCoresMatchRecompute(dynamic, "fuzz step"));
  }
}

TEST_P(DynamicCoresFuzzTest, DenseChurn) {
  // Start from a random graph, then churn edges; check every 10 ops.
  Graph base = gen::ErdosRenyiGnp(40, 0.15, GetParam() + 500);
  DynamicCores dynamic(base);
  Rng rng(GetParam() + 900);
  for (int op = 0; op < 300; ++op) {
    const auto u = static_cast<VertexId>(rng.Below(40));
    const auto v = static_cast<VertexId>(rng.Below(40));
    if (u == v) continue;
    if (rng.Chance(0.5)) {
      dynamic.AddEdge(u, v);
    } else {
      dynamic.RemoveEdge(u, v);
    }
    if (op % 10 == 9) {
      ASSERT_NO_FATAL_FAILURE(
          ExpectCoresMatchRecompute(dynamic, "churn step"));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicCoresFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(DynamicCoresTest, CsmGoodnessTracksEvolvingGraph) {
  // The promise of the module: CoreNumber(v) IS m*(G, v) at all times.
  DynamicCores g(10);
  // Build two triangles sharing vertex 4.
  g.AddEdge(0, 1);
  g.AddEdge(1, 4);
  g.AddEdge(4, 0);
  g.AddEdge(4, 5);
  g.AddEdge(5, 6);
  g.AddEdge(6, 4);
  EXPECT_EQ(g.CoreNumber(4), 2u);
  EXPECT_EQ(g.CoreNumber(0), 2u);
  // Densify the right triangle into K4: its members rise to 3.
  g.AddEdge(5, 7);
  g.AddEdge(6, 7);
  g.AddEdge(4, 7);
  EXPECT_EQ(g.CoreNumber(4), 3u);
  EXPECT_EQ(g.CoreNumber(7), 3u);
  EXPECT_EQ(g.CoreNumber(0), 2u);  // left triangle unchanged
}

}  // namespace
}  // namespace locs
