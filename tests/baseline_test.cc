// Tests for the exponential Algorithm-1 baseline.

#include "core/baseline.h"

#include <gtest/gtest.h>

#include "core/global.h"
#include "gen/classic.h"
#include "gen/erdos_renyi.h"
#include "graph/subgraph.h"
#include "test_util.h"

namespace locs {
namespace {

constexpr uint64_t kPlenty = 1u << 22;

TEST(BaselineTest, CliqueDirect) {
  Graph g = gen::Clique(6);
  const BaselineResult result = BaselineCst(g, 0, 5, kPlenty);
  ASSERT_TRUE(result.community.has_value());
  EXPECT_EQ(result.community->members.size(), 6u);
  EXPECT_FALSE(result.budget_exhausted);
}

TEST(BaselineTest, ThresholdZeroImmediate) {
  Graph g = gen::Path(3);
  const BaselineResult result = BaselineCst(g, 1, 0, kPlenty);
  ASSERT_TRUE(result.community.has_value());
  EXPECT_EQ(result.community->members.size(), 1u);
  EXPECT_EQ(result.steps, 1u);
}

TEST(BaselineTest, Proposition3ShortCircuit) {
  Graph g = gen::Star(10);
  const BaselineResult result = BaselineCst(g, 1, 2, kPlenty);
  EXPECT_FALSE(result.community.has_value());
  EXPECT_FALSE(result.budget_exhausted);
  EXPECT_EQ(result.steps, 0u);
}

TEST(BaselineTest, PaperFigure1Queries) {
  Graph g = gen::PaperFigure1();
  auto v = [](char c) { return gen::Figure1Vertex(c); };
  const BaselineResult a3 = BaselineCst(g, v('a'), 3, kPlenty);
  ASSERT_TRUE(a3.community.has_value());
  EXPECT_TRUE(IsValidCommunity(g, a3.community->members, v('a'), 3));
  const BaselineResult g4 = BaselineCst(g, v('g'), 4, kPlenty);
  ASSERT_TRUE(g4.community.has_value());
  EXPECT_TRUE(IsValidCommunity(g, g4.community->members, v('g'), 4));
}

TEST(BaselineTest, AgreesWithGlobalOnFeasibility) {
  for (uint64_t seed : {5u, 6u, 7u}) {
    Graph g = gen::ErdosRenyiGnp(18, 0.3, seed);
    for (VertexId v0 = 0; v0 < g.NumVertices(); v0 += 2) {
      for (uint32_t k = 1; k <= 5; ++k) {
        const BaselineResult base = BaselineCst(g, v0, k, kPlenty);
        if (base.budget_exhausted) continue;  // should not happen here
        const auto global = GlobalCst(g, v0, k);
        EXPECT_EQ(base.community.has_value(), global.has_value())
            << "seed=" << seed << " v0=" << v0 << " k=" << k;
        if (base.community.has_value()) {
          EXPECT_TRUE(IsValidCommunity(g, base.community->members, v0, k));
        }
      }
    }
  }
}

TEST(BaselineTest, BudgetExhaustionReported) {
  // A graph whose CST(k) is infeasible but whose neighborhood explodes:
  // the search must hit the budget and say so (mirrors the paper's
  // Table 2 finding that the baseline rarely answers within a minute).
  Graph g = gen::ErdosRenyiGnp(60, 0.25, 17);
  uint64_t exhausted = 0;
  for (VertexId v0 = 0; v0 < 10; ++v0) {
    const BaselineResult result = BaselineCst(g, v0, 12, /*max_steps=*/200);
    exhausted += result.budget_exhausted ? 1 : 0;
    if (result.budget_exhausted) {
      EXPECT_GE(result.steps, 200u);
    }
  }
  EXPECT_GT(exhausted, 0u);
}

TEST(BaselineTest, MonotoneSequenceInvariant) {
  // Theorem 2: the baseline only takes non-decreasing δ steps, so when it
  // finds an answer the answer's δ is at least k.
  Graph g = gen::Barbell(5, 1);
  for (VertexId v0 = 0; v0 < g.NumVertices(); ++v0) {
    for (uint32_t k = 1; k <= 4; ++k) {
      const BaselineResult result = BaselineCst(g, v0, k, kPlenty);
      if (result.community.has_value()) {
        EXPECT_GE(result.community->min_degree, k);
      }
    }
  }
}

}  // namespace
}  // namespace locs
