// Tests for QueryGuard budget enforcement and the graceful-degradation
// contract: every solver family, when interrupted, returns a valid
// connected best-so-far community, and budget trips are deterministic.

#include "util/guard.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <vector>

#include "core/global.h"
#include "core/local_csm.h"
#include "core/local_cst.h"
#include "core/mcst.h"
#include "core/multi.h"
#include "core/result.h"
#include "core/searcher.h"
#include "exec/batch_runner.h"
#include "gen/classic.h"
#include "gen/erdos_renyi.h"
#include "graph/ordering.h"
#include "graph/subgraph.h"
#include "test_util.h"
#include "util/failpoint.h"

namespace locs {
namespace {

using testing::ToSet;

/// A guard whose deadline is already in the past: the first Spend trips
/// with kDeadline, deterministically.
QueryGuard ExpiredGuard() {
  QueryLimits limits;
  limits.deadline_ms = 1000.0;
  QueryGuard guard(limits);
  guard.LimitDeadline(QueryGuard::Clock::now() -
                      std::chrono::milliseconds(1));
  return guard;
}

QueryGuard BudgetGuard(uint64_t budget) {
  QueryLimits limits;
  limits.work_budget = budget;
  return QueryGuard(limits);
}

/// The degradation contract for an interrupted result: a connected
/// community containing v0 whose reported min_degree is exact.
void ExpectValidPartial(const Graph& g, const SearchResult& result,
                        VertexId v0) {
  ASSERT_TRUE(result.Interrupted());
  EXPECT_FALSE(result.has_value());
  const Community& partial = result.best_so_far;
  ASSERT_FALSE(partial.members.empty());
  EXPECT_TRUE(IsConnectedSubset(g, partial.members));
  EXPECT_NE(ToSet(partial.members).count(v0), 0u);
  EXPECT_EQ(partial.min_degree, MinDegreeOfInduced(g, partial.members));
}

// ---------------------------------------------------------------------------
// QueryGuard unit behavior.

TEST(QueryGuardTest, UnlimitedGuardNeverStops) {
  QueryGuard guard;
  for (int i = 0; i < 10000; ++i) EXPECT_FALSE(guard.Spend(1000));
  EXPECT_FALSE(guard.Stopped());
  EXPECT_EQ(guard.spent(), 10000u * 1000u);
}

TEST(QueryGuardTest, AllZeroLimitsAreUnlimited) {
  QueryGuard guard((QueryLimits()));
  EXPECT_FALSE(guard.Spend(uint64_t{1} << 40));
  EXPECT_FALSE(guard.Stopped());
}

TEST(QueryGuardTest, WorkBudgetTripsAndStaysTripped) {
  QueryGuard guard = BudgetGuard(100);
  EXPECT_FALSE(guard.Spend(50));
  EXPECT_TRUE(guard.Spend(60));  // 110 > 100
  EXPECT_TRUE(guard.Stopped());
  EXPECT_EQ(guard.cause(), Termination::kBudgetExhausted);
  // Sticky: even a zero-cost poll still reports the trip.
  EXPECT_TRUE(guard.Spend(0));
}

TEST(QueryGuardTest, BudgetNeverCoastsAFullPollIntervalPast) {
  // Budget far below kPollInterval: the cap on next_poll_ must trip the
  // guard at the first Spend crossing the budget, not ~1024 units later.
  QueryGuard guard = BudgetGuard(10);
  EXPECT_FALSE(guard.Spend(10));  // exactly at budget: not yet over
  EXPECT_TRUE(guard.Spend(1));    // 11 > 10
  EXPECT_EQ(guard.cause(), Termination::kBudgetExhausted);
}

TEST(QueryGuardTest, BudgetTripIsAPureFunctionOfTheDeltaSequence) {
  const std::vector<uint64_t> deltas = {3, 700, 41, 512, 512, 97, 2048};
  std::vector<int> trip_points;
  for (int run = 0; run < 3; ++run) {
    QueryGuard guard = BudgetGuard(1500);
    int tripped_at = -1;
    for (size_t i = 0; i < deltas.size(); ++i) {
      if (guard.Spend(deltas[i]) && tripped_at < 0) {
        tripped_at = static_cast<int>(i);
      }
    }
    trip_points.push_back(tripped_at);
  }
  EXPECT_EQ(trip_points[0], trip_points[1]);
  EXPECT_EQ(trip_points[1], trip_points[2]);
  EXPECT_GE(trip_points[0], 0);
}

TEST(QueryGuardTest, ExpiredDeadlineTripsOnFirstSpend) {
  QueryGuard guard = ExpiredGuard();
  EXPECT_TRUE(guard.Spend(1));
  EXPECT_EQ(guard.cause(), Termination::kDeadline);
}

TEST(QueryGuardTest, CancelFlagTrips) {
  std::atomic<bool> cancel{false};
  QueryLimits limits;
  limits.cancel = &cancel;
  QueryGuard guard(limits);
  EXPECT_FALSE(guard.Spend(1));
  cancel.store(true);
  // The flag is polled at most every kPollInterval units.
  EXPECT_TRUE(guard.Spend(2 * QueryGuard::kPollInterval));
  EXPECT_EQ(guard.cause(), Termination::kCancelled);
}

#if LOCS_FAILPOINTS
TEST(QueryGuardTest, ForceDeadlineFailpointTripsAnyLimitedGuard) {
  failpoint::ScopedFailpoint fp("guard.force_deadline");
  QueryGuard guard = BudgetGuard(uint64_t{1} << 40);
  EXPECT_TRUE(guard.Spend(1));
  EXPECT_EQ(guard.cause(), Termination::kDeadline);
  EXPECT_GE(failpoint::HitCount("guard.force_deadline"), 1u);
}
#endif

// ---------------------------------------------------------------------------
// Local CST under guards.

TEST(GuardedCstTest, GenerousBudgetMatchesUnguardedAnswer) {
  Graph g = gen::ErdosRenyiGnp(200, 0.06, 11);
  const GraphFacts facts = GraphFacts::Compute(g);
  LocalCstSolver solver(g, nullptr, &facts);
  for (VertexId v0 = 0; v0 < g.NumVertices(); v0 += 17) {
    const SearchResult plain = solver.Solve(v0, 4);
    QueryGuard guard = BudgetGuard(uint64_t{1} << 40);
    const SearchResult guarded = solver.Solve(v0, 4, {}, nullptr, &guard);
    ASSERT_EQ(guarded.status, plain.status) << "v0=" << v0;
    if (plain.has_value()) {
      EXPECT_EQ(guarded->members, plain->members);
      EXPECT_EQ(guarded->min_degree, plain->min_degree);
    }
  }
}

TEST(GuardedCstTest, CliqueUnderTinyBudgetDegradesGracefully) {
  Graph g = gen::Clique(60);
  const GraphFacts facts = GraphFacts::Compute(g);
  LocalCstSolver solver(g, nullptr, &facts);
  QueryGuard guard = BudgetGuard(40);
  const SearchResult result = solver.Solve(7, 59, {}, nullptr, &guard);
  ASSERT_EQ(result.status, Termination::kBudgetExhausted);
  ExpectValidPartial(g, result, 7);
}

TEST(GuardedCstTest, BudgetLadderAlwaysYieldsValidResults) {
  // At every budget the answer is either exact (kFound/kNotExists,
  // matching the unguarded run) or a valid connected partial.
  Graph g = gen::ErdosRenyiGnp(400, 0.03, 5);
  const GraphFacts facts = GraphFacts::Compute(g);
  const OrderedAdjacency ordered(g);
  LocalCstSolver solver(g, &ordered, &facts);
  const VertexId v0 = 13;
  const SearchResult exact = solver.Solve(v0, 4);
  for (uint64_t budget : {5u, 50u, 200u, 1000u, 20000u, 2000000u}) {
    QueryGuard guard = BudgetGuard(budget);
    const SearchResult result = solver.Solve(v0, 4, {}, nullptr, &guard);
    if (result.Interrupted()) {
      EXPECT_EQ(result.status, Termination::kBudgetExhausted);
      ExpectValidPartial(g, result, v0);
    } else {
      ASSERT_EQ(result.status, exact.status) << "budget=" << budget;
      if (exact.has_value()) {
        EXPECT_EQ(result->members, exact->members);
      }
    }
  }
}

TEST(GuardedCstTest, InterruptedRunsAreRepeatable) {
  // Budget trips are deterministic: two identical guarded runs produce
  // byte-identical partial answers.
  Graph g = gen::ErdosRenyiGnp(300, 0.05, 21);
  const GraphFacts facts = GraphFacts::Compute(g);
  LocalCstSolver solver(g, nullptr, &facts);
  for (uint64_t budget : {30u, 300u, 3000u}) {
    QueryGuard first_guard = BudgetGuard(budget);
    const SearchResult first = solver.Solve(9, 5, {}, nullptr, &first_guard);
    QueryGuard again_guard = BudgetGuard(budget);
    const SearchResult again = solver.Solve(9, 5, {}, nullptr, &again_guard);
    EXPECT_EQ(first.status, again.status) << "budget=" << budget;
    EXPECT_EQ(first.best_so_far.members, again.best_so_far.members);
    EXPECT_EQ(first.community.has_value(), again.community.has_value());
    if (first.community.has_value()) {
      EXPECT_EQ(first.community->members, again.community->members);
    }
  }
}

TEST(GuardedCstTest, ExpiredDeadlineReturnsPartialImmediately) {
  Graph g = gen::Clique(30);
  const GraphFacts facts = GraphFacts::Compute(g);
  LocalCstSolver solver(g, nullptr, &facts);
  QueryGuard guard = ExpiredGuard();
  const SearchResult result = solver.Solve(0, 10, {}, nullptr, &guard);
  ASSERT_EQ(result.status, Termination::kDeadline);
  ExpectValidPartial(g, result, 0);
}

TEST(GuardedCstTest, PresetCancelReturnsSingleton) {
  Graph g = gen::Clique(30);
  const GraphFacts facts = GraphFacts::Compute(g);
  LocalCstSolver solver(g, nullptr, &facts);
  std::atomic<bool> cancel{true};
  QueryLimits limits;
  limits.cancel = &cancel;
  QueryGuard guard(limits);
  const SearchResult result = solver.Solve(4, 10, {}, nullptr, &guard);
  ASSERT_EQ(result.status, Termination::kCancelled);
  ExpectValidPartial(g, result, 4);
}

TEST(GuardedCstTest, NotExistsStaysExactUnderGenerousGuard) {
  // A path has no CST(2) answer anywhere; a generous guard must not turn
  // that exact negative into an interruption.
  Graph g = gen::Path(500);
  const GraphFacts facts = GraphFacts::Compute(g);
  LocalCstSolver solver(g, nullptr, &facts);
  QueryGuard guard = BudgetGuard(uint64_t{1} << 40);
  const SearchResult result = solver.Solve(250, 2, {}, nullptr, &guard);
  EXPECT_EQ(result.status, Termination::kNotExists);
  EXPECT_FALSE(result.has_value());
}

// ---------------------------------------------------------------------------
// Global CST under guards (mid-peel interruption).

TEST(GuardedGlobalCstTest, BudgetLadderMidPeel) {
  Graph g = gen::ErdosRenyiGnp(500, 0.02, 31);
  const VertexId v0 = 3;
  const SearchResult exact = GlobalCst(g, v0, 3);
  for (uint64_t budget : {10u, 600u, 2000u, 10000u, 10000000u}) {
    QueryGuard guard = BudgetGuard(budget);
    const SearchResult result = GlobalCst(g, v0, 3, nullptr, &guard);
    if (result.Interrupted()) {
      EXPECT_EQ(result.status, Termination::kBudgetExhausted);
      ExpectValidPartial(g, result, v0);
    } else {
      ASSERT_EQ(result.status, exact.status) << "budget=" << budget;
      if (exact.has_value()) {
        EXPECT_EQ(ToSet(result->members), ToSet(exact->members));
      }
    }
  }
}

TEST(GuardedGlobalCstTest, PeeledQueryVertexIsExactNotExistsMidPeel) {
  // Star: every leaf (and then the center) peels instantly at k=2. Even a
  // tiny budget must report the exact kNotExists once v0 is peeled, not
  // an interruption (peel removals are sound regardless of the trip).
  Graph g = gen::Star(4000);
  for (uint64_t budget : {4100u, 6000u, 12000u}) {
    QueryGuard guard = BudgetGuard(budget);
    const SearchResult result = GlobalCst(g, 1, 2, nullptr, &guard);
    if (!result.Interrupted()) {
      EXPECT_EQ(result.status, Termination::kNotExists);
    }
  }
  // Unguarded reference: provably no answer.
  EXPECT_EQ(GlobalCst(g, 1, 2).status, Termination::kNotExists);
}

// ---------------------------------------------------------------------------
// CSM under guards.

TEST(GuardedCsmTest, StarUnderTinyBudgetDegradesGracefully) {
  Graph g = gen::Star(5000);
  const GraphFacts facts = GraphFacts::Compute(g);
  LocalCsmSolver solver(g, nullptr, &facts);
  QueryGuard guard = BudgetGuard(60);
  const SearchResult result = solver.Solve(0, {}, nullptr, &guard);
  ASSERT_EQ(result.status, Termination::kBudgetExhausted);
  ExpectValidPartial(g, result, 0);
}

TEST(GuardedCsmTest, BudgetLadderAlwaysYieldsValidResults) {
  Graph g = gen::ErdosRenyiGnp(300, 0.04, 77);
  const GraphFacts facts = GraphFacts::Compute(g);
  LocalCsmSolver solver(g, nullptr, &facts);
  const VertexId v0 = 8;
  const SearchResult exact = solver.Solve(v0);
  ASSERT_TRUE(exact.has_value());
  for (uint64_t budget : {10u, 100u, 1000u, 50000u, 5000000u}) {
    QueryGuard guard = BudgetGuard(budget);
    const SearchResult result = solver.Solve(v0, {}, nullptr, &guard);
    if (result.Interrupted()) {
      EXPECT_EQ(result.status, Termination::kBudgetExhausted);
      ExpectValidPartial(g, result, v0);
      // A partial CSM answer never overstates the optimum.
      EXPECT_LE(result.best_so_far.min_degree, exact->min_degree);
    } else {
      ASSERT_TRUE(result.has_value());
      EXPECT_EQ(result->min_degree, exact->min_degree);
    }
  }
}

TEST(GuardedCsmTest, GlobalCsmChecksGuardBeforeItsIndivisiblePass) {
  Graph g = gen::Clique(20);
  QueryGuard guard = ExpiredGuard();
  const SearchResult result = GlobalCsm(g, 5, nullptr, &guard);
  ASSERT_EQ(result.status, Termination::kDeadline);
  ExpectValidPartial(g, result, 5);
}

// ---------------------------------------------------------------------------
// Multi-vertex solvers under guards.

TEST(GuardedMultiTest, BudgetLadderKeepsAnchorFragmentValid) {
  Graph g = gen::Barbell(8, 4);
  const GraphFacts facts = GraphFacts::Compute(g);
  const OrderedAdjacency ordered(g);
  LocalMultiSolver solver(g, &ordered, &facts);
  const std::vector<VertexId> query = {
      0, static_cast<VertexId>(g.NumVertices() - 1)};
  const SearchResult exact = solver.CstMulti(query, 2);
  ASSERT_TRUE(exact.has_value());
  for (uint64_t budget : {5u, 40u, 200u, 4000u}) {
    QueryGuard guard = BudgetGuard(budget);
    const SearchResult result =
        solver.CstMulti(query, 2, nullptr, &guard);
    if (result.Interrupted()) {
      EXPECT_EQ(result.status, Termination::kBudgetExhausted);
      ExpectValidPartial(g, result, query[0]);
    } else {
      ASSERT_TRUE(result.has_value());
      EXPECT_EQ(ToSet(result->members), ToSet(exact->members));
    }
  }
}

TEST(GuardedMultiTest, CsmMultiSharesOneGuardAcrossProbes) {
  Graph g = gen::Barbell(6, 3);
  const GraphFacts facts = GraphFacts::Compute(g);
  const OrderedAdjacency ordered(g);
  LocalMultiSolver solver(g, &ordered, &facts);
  const std::vector<VertexId> query = {
      0, static_cast<VertexId>(g.NumVertices() - 1)};
  // Unlimited: exact δ = 2 (the whole barbell body).
  EXPECT_EQ(solver.CsmMulti(query)->min_degree, 2u);
  // Expired deadline: interrupted; the binary search still surfaces its
  // best proven answer (at worst the trivial singleton fragment).
  QueryGuard guard = ExpiredGuard();
  const SearchResult result = solver.CsmMulti(query, nullptr, &guard);
  ASSERT_TRUE(result.Interrupted());
  EXPECT_EQ(result.status, Termination::kDeadline);
  ExpectValidPartial(g, result, query[0]);
}

// ---------------------------------------------------------------------------
// mCST termination taxonomy.

TEST(GuardedMcstTest, NativeStepCapReportsBudgetExhausted) {
  // Cycle: minimal CST(2) containing v0 is the whole cycle; the clique
  // shortcut cannot answer and deepening needs many steps.
  Graph g = gen::Cycle(14);
  const McstResult capped = ExactMcst(g, 0, 2, /*max_steps=*/3);
  EXPECT_TRUE(capped.budget_exhausted);
  EXPECT_EQ(capped.termination, Termination::kBudgetExhausted);
  ASSERT_TRUE(capped.community.has_value());  // greedy upper bound stands
  EXPECT_TRUE(IsValidCommunity(g, capped.community->members, 0, 2));

  const McstResult full = ExactMcst(g, 0, 2, 100000000);
  EXPECT_FALSE(full.budget_exhausted);
  EXPECT_EQ(full.termination, Termination::kFound);
  ASSERT_TRUE(full.community.has_value());
  EXPECT_EQ(full.community->members.size(), 14u);
}

TEST(GuardedMcstTest, GuardDeadlinePropagatesIntoTermination) {
  Graph g = gen::Cycle(12);
  QueryGuard guard = ExpiredGuard();
  const McstResult result = ExactMcst(g, 0, 2, 100000000, &guard);
  EXPECT_TRUE(result.budget_exhausted);
  EXPECT_EQ(result.termination, Termination::kDeadline);
}

TEST(GuardedMcstTest, GreedyMcstGuardTripStillReturnsValidCommunity) {
  Graph g = gen::Clique(40);
  const SearchResult exact = GreedyMcst(g, 0, 10);
  ASSERT_TRUE(exact.Found());
  EXPECT_TRUE(IsValidCommunity(g, exact->members, 0, 10));
  for (uint64_t budget : {50u, 500u, 5000u, 500000u}) {
    QueryGuard guard = BudgetGuard(budget);
    const SearchResult result = GreedyMcst(g, 0, 10, &guard);
    if (result.Interrupted()) {
      EXPECT_EQ(result.status, Termination::kBudgetExhausted);
      ExpectValidPartial(g, result, 0);
    } else {
      EXPECT_TRUE(IsValidCommunity(g, result->members, 0, 10));
    }
  }
}

// ---------------------------------------------------------------------------
// Facade + failpoint end-to-end.

#if LOCS_FAILPOINTS
TEST(GuardedSearcherTest, ForceDeadlineFailpointInterruptsEverySolver) {
  CommunitySearcher searcher(gen::ErdosRenyiGnp(150, 0.08, 13));
  failpoint::ScopedFailpoint fp("guard.force_deadline");
  QueryLimits limits;
  limits.work_budget = uint64_t{1} << 40;  // limited guard => polls run

  {
    QueryGuard guard(limits);
    const SearchResult result = searcher.Cst(0, 3, {}, nullptr, &guard);
    EXPECT_EQ(result.status, Termination::kDeadline);
  }
  {
    QueryGuard guard(limits);
    const SearchResult result = searcher.Csm(0, {}, nullptr, &guard);
    EXPECT_EQ(result.status, Termination::kDeadline);
  }
  {
    QueryGuard guard(limits);
    const SearchResult result = searcher.CstGlobal(0, 3, nullptr, &guard);
    EXPECT_EQ(result.status, Termination::kDeadline);
  }
  EXPECT_GE(failpoint::HitCount("guard.force_deadline"), 3u);
}
#endif

// ---------------------------------------------------------------------------
// Batch layer: per-query budgets are thread-count invariant.

TEST(GuardedBatchTest, BudgetInterruptionsAreByteIdenticalAcrossThreads) {
  Graph g = gen::ErdosRenyiGnp(400, 0.04, 99);
  const GraphFacts facts = GraphFacts::Compute(g);
  const OrderedAdjacency ordered(g);
  std::vector<VertexId> queries;
  for (VertexId v = 0; v < g.NumVertices(); v += 3) queries.push_back(v);

  BatchRunner runner(g, &ordered, &facts);
  BatchLimits reference_limits;
  reference_limits.num_threads = 1;
  reference_limits.query_work_budget = 300;
  const auto reference = runner.RunCst(queries, 4, {}, reference_limits);
  // The tiny budget must actually interrupt something, or this test
  // degenerates.
  ASSERT_GT(reference.stats.CountOf(Termination::kBudgetExhausted), 0u);

  for (unsigned threads : {2u, 8u}) {
    BatchLimits limits;
    limits.num_threads = threads;
    limits.query_work_budget = 300;
    const auto batch = runner.RunCst(queries, 4, {}, limits);
    ASSERT_EQ(batch.results.size(), reference.results.size());
    for (size_t i = 0; i < batch.results.size(); ++i) {
      EXPECT_EQ(batch.results[i].status, reference.results[i].status)
          << "threads=" << threads << " i=" << i;
      EXPECT_EQ(batch.results[i].best_so_far.members,
                reference.results[i].best_so_far.members);
      ASSERT_EQ(batch.results[i].has_value(),
                reference.results[i].has_value());
      if (batch.results[i].has_value()) {
        EXPECT_EQ(batch.results[i]->members,
                  reference.results[i]->members);
      }
    }
    for (int s = 0; s < kNumTerminations; ++s) {
      EXPECT_EQ(batch.stats.status_counts[s],
                reference.stats.status_counts[s]);
    }
  }
}

TEST(GuardedBatchTest, EveryInterruptedResultSatisfiesTheContract) {
  Graph g = gen::ErdosRenyiGnp(300, 0.05, 55);
  const GraphFacts facts = GraphFacts::Compute(g);
  const OrderedAdjacency ordered(g);
  std::vector<VertexId> queries;
  for (VertexId v = 0; v < g.NumVertices(); v += 5) queries.push_back(v);

  BatchRunner runner(g, &ordered, &facts);
  BatchLimits limits;
  limits.query_work_budget = 200;
  const auto batch = runner.RunCsm(queries, {}, limits);
  uint64_t interrupted = 0;
  for (size_t i = 0; i < batch.results.size(); ++i) {
    const SearchResult& result = batch.results[i];
    if (result.Interrupted()) {
      ++interrupted;
      ExpectValidPartial(g, result, queries[i]);
    }
  }
  EXPECT_EQ(interrupted,
            batch.stats.CountOf(Termination::kBudgetExhausted));
  // status_counts cover every slot exactly once.
  uint64_t total = 0;
  for (int s = 0; s < kNumTerminations; ++s) {
    total += batch.stats.status_counts[s];
  }
  EXPECT_EQ(total, queries.size());
}

}  // namespace
}  // namespace locs
