// Unit tests for JsonReport, the writer behind the BENCH_*.json CI
// artifacts: escaping, numeric rendering, structural nesting, and the
// Render()/Write() round trip.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/reporting.h"
#include "gtest/gtest.h"

namespace locs::bench {
namespace {

TEST(JsonReportTest, EmptyReportIsStructurallyComplete) {
  JsonReport report("empty");
  const std::string text = report.Render();
  EXPECT_EQ(text,
            "{\n"
            "  \"experiment\": \"empty\",\n"
            "  \"meta\": {\n"
            "  },\n"
            "  \"rows\": [\n"
            "  ]\n}\n");
}

TEST(JsonReportTest, MetaAndRowsRenderInInsertionOrder) {
  JsonReport report("fig13");
  report.Meta("graph", "lfr_20k").Meta("seed", "5");
  report.AddRow().Num("k", 3).Num("visited", 120.5).Str("solver", "ls-li");
  report.AddRow().Num("k", 4).Str("solver", "global");
  const std::string text = report.Render();
  EXPECT_EQ(text,
            "{\n"
            "  \"experiment\": \"fig13\",\n"
            "  \"meta\": {\n"
            "    \"graph\": \"lfr_20k\",\n"
            "    \"seed\": \"5\"\n"
            "  },\n"
            "  \"rows\": [\n"
            "    {\n"
            "      \"k\": 3,\n"
            "      \"visited\": 120.5,\n"
            "      \"solver\": \"ls-li\"\n"
            "    },\n"
            "    {\n"
            "      \"k\": 4,\n"
            "      \"solver\": \"global\"\n"
            "    }\n"
            "  ]\n}\n");
}

TEST(JsonReportTest, EscapesMetaAndStringFields) {
  JsonReport report("quote\"me");
  report.Meta("path", "/tmp/a\\b\nnewline");
  report.AddRow().Str("label", "tab\there");
  const std::string text = report.Render();
  EXPECT_NE(text.find("\"experiment\": \"quote\\\"me\""), std::string::npos)
      << text;
  EXPECT_NE(text.find("\"path\": \"/tmp/a\\\\b\\nnewline\""),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("\"label\": \"tab\\there\""), std::string::npos)
      << text;
  // The raw control bytes must never appear inside the rendered JSON
  // strings (the only real newlines are the pretty-printer's own).
  EXPECT_EQ(text.find("a\\b\nnewline"), std::string::npos);
  EXPECT_EQ(text.find('\t'), std::string::npos);
}

TEST(JsonReportTest, IntegralNumbersRenderUndecorated) {
  JsonReport report("numbers");
  report.AddRow().Num("n", 2000).Num("rate", 0.25).Num("neg", -3);
  const std::string text = report.Render();
  EXPECT_NE(text.find("\"n\": 2000,"), std::string::npos) << text;
  EXPECT_NE(text.find("\"rate\": 0.25,"), std::string::npos) << text;
  EXPECT_NE(text.find("\"neg\": -3\n"), std::string::npos) << text;
  EXPECT_EQ(text.find("2000.0"), std::string::npos) << text;
}

TEST(JsonReportTest, WriteRoundTripsRender) {
  const std::string path = ::testing::TempDir() + "/json_report_test.json";
  JsonReport report("roundtrip");
  report.Meta("graph", "gnp");
  report.AddRow().Num("k", 5).Str("note", "line\none");
  ASSERT_TRUE(report.Write(path));
  std::ifstream in(path, std::ios::binary);
  std::ostringstream loaded;
  loaded << in.rdbuf();
  EXPECT_EQ(loaded.str(), report.Render());
  std::remove(path.c_str());
}

TEST(JsonReportTest, WriteToUnopenablePathFails) {
  JsonReport report("fail");
  EXPECT_FALSE(report.Write("/nonexistent-dir-for-sure/report.json"));
}

}  // namespace
}  // namespace locs::bench
