// In-process tests of the serving layer above the parser: sessions over
// fd transports, the graph registry, admission control (deterministic
// BUSY via the serve.slow_query failpoint), graceful drain, metrics
// consistency, and concurrent sessions through the real TcpServer.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "gen/classic.h"
#include "graph/io.h"
#include "serve/admission.h"
#include "serve/server.h"
#include "serve/session.h"
#include "util/failpoint.h"

namespace locs::serve {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// Shared server state plus a scripted-session driver. Scripts run over
/// file-backed fds (no pipe-capacity deadlock however large the reply),
/// one reply line per effective request, exactly like a piped locsd.
struct ServeFixture {
  GraphRegistry registry;
  AdmissionController admission;
  ServerMetrics metrics;
  SessionOptions options;

  explicit ServeFixture(
      size_t max_graphs = 16,
      AdmissionController::Options admit = AdmissionController::Options())
      : registry(max_graphs), admission(admit) {}

  /// Registers `graph` under `name` via a temp binary file.
  void Register(const std::string& name, const Graph& graph) {
    const std::string path = TempPath("serve_fix_" + name + ".lcsg");
    ASSERT_TRUE(SaveBinary(graph, path));
    IoError error;
    bool full = false;
    ASSERT_NE(registry.Load(name, path, &error, &full), nullptr)
        << error.message;
  }

  /// Runs one session over the script; returns the reply lines.
  std::vector<std::string> Run(const std::vector<std::string>& script,
                               const std::string& tag) {
    const std::string in_path = TempPath("serve_in_" + tag);
    const std::string out_path = TempPath("serve_out_" + tag);
    {
      const int fd =
          ::open(in_path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0600);
      EXPECT_GE(fd, 0);
      for (const std::string& line : script) {
        const std::string framed = line + "\n";
        EXPECT_EQ(::write(fd, framed.data(), framed.size()),
                  static_cast<ssize_t>(framed.size()));
      }
      ::close(fd);
    }
    const int in_fd = ::open(in_path.c_str(), O_RDONLY);
    const int out_fd =
        ::open(out_path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0600);
    EXPECT_GE(in_fd, 0);
    EXPECT_GE(out_fd, 0);
    {
      FdTransport transport(in_fd, out_fd);
      Session session(transport, registry, admission, metrics, options);
      session.Run();
    }
    ::close(in_fd);
    ::close(out_fd);

    std::vector<std::string> replies;
    const int read_fd = ::open(out_path.c_str(), O_RDONLY);
    EXPECT_GE(read_fd, 0);
    FdTransport reader(read_fd, -1);
    std::string line;
    while (reader.ReadLine(&line) == Transport::ReadStatus::kLine) {
      replies.push_back(line);
    }
    ::close(read_fd);
    return replies;
  }
};

bool StartsWith(const std::string& text, const std::string& prefix) {
  return text.rfind(prefix, 0) == 0;
}

TEST(ServeSessionTest, KnownStructureQueriesAreExact) {
  // Barbell(6, 2): two K6 joined through a 2-vertex path. The CST(5)
  // and CSM answers are structurally forced, so replies are checkable
  // without re-running a solver.
  ServeFixture fix;
  fix.Register("bb", gen::Barbell(6, 2));
  const auto replies = fix.Run(
      {
          "PING",
          "CSM bb 0",
          "CST bb 0 5",
          "CST bb 0 7",       // k above the degeneracy: exact negative
          "MULTI bb 5 0 1",   // both seeds in the left clique
          "MULTI bb 5 0 11",  // seeds in different cliques: no δ>=5 answer
          "QUIT",
      },
      "exact");
  ASSERT_EQ(replies.size(), 7u);
  EXPECT_EQ(replies[0], "OK pong");
  EXPECT_TRUE(StartsWith(replies[1], "OK status=found n=6 delta=5"))
      << replies[1];
  EXPECT_TRUE(StartsWith(replies[2], "OK status=found n=6 delta=5"))
      << replies[2];
  EXPECT_TRUE(StartsWith(replies[3], "OK status=not-exists n=0"))
      << replies[3];
  EXPECT_TRUE(StartsWith(replies[4], "OK status=found n=6 delta=5"))
      << replies[4];
  EXPECT_TRUE(StartsWith(replies[5], "OK status=not-exists n=0"))
      << replies[5];
  EXPECT_EQ(replies[6], "OK bye");
}

TEST(ServeSessionTest, LoadEvictListLifecycle) {
  ServeFixture fix;
  const std::string path = TempPath("serve_lifecycle.lcsg");
  ASSERT_TRUE(SaveBinary(gen::Clique(8), path));
  const auto replies = fix.Run(
      {
          "LOAD k8 " + path,
          "LIST",
          "CST k8 0 7",
          "EVICT k8",
          "CST k8 0 7",  // evicted name is gone for new queries
          "EVICT k8",    // double-evict is a typed error
          "LIST",
          "LOAD broken /nonexistent/file.lcsg",
      },
      "lifecycle");
  ASSERT_EQ(replies.size(), 8u);
  EXPECT_TRUE(StartsWith(replies[0], "OK graph=k8 vertices=8 edges=28"))
      << replies[0];
  EXPECT_EQ(replies[1], "OK graphs=1 k8:8:28");
  EXPECT_TRUE(StartsWith(replies[2], "OK status=found n=8 delta=7"));
  EXPECT_EQ(replies[3], "OK evicted=k8");
  EXPECT_TRUE(StartsWith(replies[4], "ERR unknown-graph"));
  EXPECT_TRUE(StartsWith(replies[5], "ERR unknown-graph"));
  EXPECT_EQ(replies[6], "OK graphs=0");
  EXPECT_TRUE(StartsWith(replies[7], "ERR io open:")) << replies[7];
}

TEST(ServeSessionTest, ExecutionErrorsAreTypedAndNonFatal) {
  ServeFixture fix;
  fix.Register("g", gen::Clique(5));
  const auto replies = fix.Run(
      {
          "CST nope 0 2",       // unknown graph
          "CST g 99 2",         // vertex out of range
          "MULTI g 2 1 2 1",    // duplicate seed
          "CST g zero 2",       // parse error mid-session
          "CST g 0 4 limit=2",  // session still fully functional
      },
      "errors");
  ASSERT_EQ(replies.size(), 5u);
  EXPECT_TRUE(StartsWith(replies[0], "ERR unknown-graph"));
  EXPECT_TRUE(StartsWith(replies[1], "ERR vertex-range"));
  EXPECT_TRUE(StartsWith(replies[2], "ERR duplicate-vertex"));
  EXPECT_TRUE(StartsWith(replies[3], "ERR bad-number"));
  // δ >= 4 in K5 forces the whole clique; the echo is capped at 2.
  EXPECT_TRUE(StartsWith(replies[4], "OK status=found n=5 delta=4"))
      << replies[4];
  EXPECT_TRUE(replies[4].find("truncated=3") != std::string::npos)
      << replies[4];
}

TEST(ServeSessionTest, RegistryCapacityIsEnforced) {
  ServeFixture fix(/*max_graphs=*/1);
  const std::string path_a = TempPath("serve_cap_a.lcsg");
  const std::string path_b = TempPath("serve_cap_b.lcsg");
  ASSERT_TRUE(SaveBinary(gen::Clique(4), path_a));
  ASSERT_TRUE(SaveBinary(gen::Cycle(5), path_b));
  const auto replies = fix.Run(
      {
          "LOAD a " + path_a,
          "LOAD b " + path_b,  // registry full
          "LOAD a " + path_b,  // replacing an existing name is allowed
          "LIST",
      },
      "capacity");
  ASSERT_EQ(replies.size(), 4u);
  EXPECT_TRUE(StartsWith(replies[0], "OK graph=a"));
  EXPECT_TRUE(StartsWith(replies[1], "ERR registry-full"));
  EXPECT_TRUE(StartsWith(replies[2], "OK graph=a vertices=5"));
  EXPECT_EQ(replies[3], "OK graphs=1 a:5:5");
}

TEST(ServeSessionTest, MemberLimitDefaultsAndOverrides) {
  ServeFixture fix;
  fix.options.default_member_limit = 3;
  fix.Register("g", gen::Clique(6));
  const auto replies = fix.Run(
      {
          "CST g 0 5",          // server default caps the echo at 3
          "CST g 0 5 limit=1",  // request override wins
      },
      "limit");
  ASSERT_EQ(replies.size(), 2u);
  // Clique(6) answer has n=6; the echo is capped at 3 (server default)
  // and 1 (request override) members respectively.
  EXPECT_TRUE(replies[0].find("truncated=3") != std::string::npos)
      << replies[0];
  EXPECT_TRUE(replies[1].find("truncated=5") != std::string::npos)
      << replies[1];
}

TEST(ServeSessionTest, DrainFlagRejectsQueriesAndEndsSession) {
  ServeFixture fix;
  fix.Register("g", gen::Clique(4));
  std::atomic<bool> stop{true};
  fix.options.stop = &stop;
  const auto replies = fix.Run({"CST g 0 2", "CST g 0 3"}, "drain");
  // The first query gets the typed drain error and the session exits;
  // the second request is never read.
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_TRUE(StartsWith(replies[0], "ERR shutting-down"));
}

TEST(ServeSessionTest, MetricsLedgerAddsUp) {
  ServeFixture fix;
  fix.Register("g", gen::Barbell(5, 0));
  const auto replies = fix.Run(
      {
          "PING",
          "CST g 0 4",
          "CSM g 0",
          "MULTI g 4 0 1",
          "CST nope 0 1",
          "GARBAGE",
          "STATS",
      },
      "metrics");
  ASSERT_EQ(replies.size(), 7u);
  const MetricsSnapshot snap = fix.metrics.Snapshot();
  EXPECT_EQ(snap.TotalRequests(), 6u);  // GARBAGE never parses to a verb
  EXPECT_EQ(snap.requests_by_verb[static_cast<size_t>(Verb::kCst)], 2u);
  EXPECT_EQ(snap.requests_by_verb[static_cast<size_t>(Verb::kPing)], 1u);
  EXPECT_EQ(snap.TotalErrors(), 2u);
  EXPECT_EQ(
      snap.errors_by_kind[static_cast<size_t>(WireError::kUnknownVerb)], 1u);
  EXPECT_EQ(
      snap.errors_by_kind[static_cast<size_t>(WireError::kUnknownGraph)],
      1u);
  // Three queries completed -> three latency samples, and the percentile
  // estimator returns a sane, monotone bound (possibly 0: queries on toy
  // graphs legitimately finish in under a microsecond).
  EXPECT_EQ(snap.TotalQueries(), 3u);
  EXPECT_LE(snap.LatencyPercentileUs(0.50), snap.LatencyPercentileUs(0.95));
  EXPECT_LT(snap.LatencyPercentileUs(0.95), uint64_t{1} << 31);
  EXPECT_EQ(snap.sessions_opened, 1u);
  EXPECT_EQ(snap.sessions_closed, 1u);
  // The STATS reply carries the same ledger.
  EXPECT_TRUE(replies[6].find(" requests=6") != std::string::npos)
      << replies[6];
  EXPECT_TRUE(replies[6].find(" errors=2") != std::string::npos);
  EXPECT_TRUE(replies[6].find(" queries=3") != std::string::npos);
}

TEST(ServeSessionTest, SaturationYieldsBusyNotBlocking) {
  // max_inflight=1, max_queued=0: with one slow query holding the slot
  // (the serve.slow_query failpoint makes "slow" deterministic), a
  // concurrent query must fast-reject with BUSY.
  AdmissionController::Options admit;
  admit.max_inflight = 1;
  admit.max_queued = 0;
  ServeFixture fix(/*max_graphs=*/16, admit);
  fix.Register("g", gen::Clique(4));
  failpoint::ScopedFailpoint slow("serve.slow_query");

  std::vector<std::string> slow_replies;
  std::thread holder([&] {
    slow_replies = fix.Run({"CST g 0 2"}, "busy_holder");
  });
  // Give the holder time to pass admission and park in the failpoint
  // sleep (200ms), then contend.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const auto busy_replies = fix.Run({"CST g 1 2"}, "busy_contender");
  holder.join();

  ASSERT_EQ(slow_replies.size(), 1u);
  EXPECT_TRUE(StartsWith(slow_replies[0], "OK status=found"));
  ASSERT_EQ(busy_replies.size(), 1u);
  EXPECT_TRUE(StartsWith(busy_replies[0], "BUSY inflight=1 queued=0"))
      << busy_replies[0];
  EXPECT_EQ(fix.metrics.Snapshot().rejected, 1u);
  EXPECT_EQ(fix.admission.Snapshot().rejected_total, 1u);
}

TEST(ServeSessionTest, BoundedQueueAdmitsThenRejects) {
  // max_inflight=1, max_queued=1: the second query waits for the slot
  // and succeeds; the third finds the queue full and fast-rejects.
  AdmissionController::Options admit;
  admit.max_inflight = 1;
  admit.max_queued = 1;
  ServeFixture fix(/*max_graphs=*/16, admit);
  fix.Register("g", gen::Clique(4));
  failpoint::ScopedFailpoint slow("serve.slow_query");

  std::vector<std::string> first, second;
  std::thread holder([&] { first = fix.Run({"CST g 0 2"}, "q_holder"); });
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  std::thread waiter([&] { second = fix.Run({"CST g 1 2"}, "q_waiter"); });
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  const auto third = fix.Run({"CST g 2 2"}, "q_reject");
  holder.join();
  waiter.join();

  ASSERT_EQ(first.size(), 1u);
  ASSERT_EQ(second.size(), 1u);
  ASSERT_EQ(third.size(), 1u);
  EXPECT_TRUE(StartsWith(first[0], "OK status=found"));
  EXPECT_TRUE(StartsWith(second[0], "OK status=found"));
  EXPECT_TRUE(StartsWith(third[0], "BUSY")) << third[0];
}

// --- TCP front end -------------------------------------------------------

/// Connects to 127.0.0.1:port, sends `script`, reads replies until the
/// server closes the connection.
std::vector<std::string> TcpScript(uint16_t port,
                                   const std::vector<std::string>& script) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  FdTransport transport(fd, fd, /*owns_fds=*/true);
  for (const std::string& line : script) {
    EXPECT_TRUE(transport.WriteLine(line));
  }
  std::vector<std::string> replies;
  std::string line;
  while (transport.ReadLine(&line) == Transport::ReadStatus::kLine) {
    replies.push_back(line);
  }
  return replies;
}

TEST(TcpServerTest, ConcurrentSessionsServeAndDrain) {
  ServerOptions options;
  options.max_sessions = 4;
  CommunityServer shared(options);
  const std::string path = TempPath("serve_tcp.lcsg");
  ASSERT_TRUE(SaveBinary(gen::Barbell(6, 2), path));
  IoError io_error;
  bool full = false;
  ASSERT_NE(shared.registry().Load("g", path, &io_error, &full), nullptr);

  Executor executor(6);
  TcpServer server(shared, executor, options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  ASSERT_NE(server.port(), 0);
  std::thread accept_thread([&] { server.Run(); });

  constexpr int kClients = 3;
  std::vector<std::vector<std::string>> replies(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      replies[static_cast<size_t>(c)] = TcpScript(
          server.port(),
          {"PING", "CST g 0 5 limit=6", "CSM g 11 limit=6", "QUIT"});
    });
  }
  for (std::thread& t : clients) t.join();
  server.Stop();
  accept_thread.join();

  for (const auto& session_replies : replies) {
    ASSERT_EQ(session_replies.size(), 4u);
    EXPECT_EQ(session_replies[0], "OK pong");
    EXPECT_TRUE(StartsWith(session_replies[1], "OK status=found n=6 delta=5"))
        << session_replies[1];
    EXPECT_TRUE(StartsWith(session_replies[2], "OK status=found n=6 delta=5"))
        << session_replies[2];
    EXPECT_EQ(session_replies[3], "OK bye");
  }
  // Every session is accounted for and fully closed after drain.
  const MetricsSnapshot snap = shared.metrics().Snapshot();
  EXPECT_EQ(snap.sessions_opened, static_cast<uint64_t>(kClients));
  EXPECT_EQ(snap.sessions_closed, static_cast<uint64_t>(kClients));
  EXPECT_EQ(server.active_sessions(), 0u);
}

TEST(TcpServerTest, SessionCapRejectsWithBusy) {
  ServerOptions options;
  options.max_sessions = 1;
  CommunityServer shared(options);
  Executor executor(3);
  TcpServer server(shared, executor, options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  std::thread accept_thread([&] { server.Run(); });

  // First connection occupies the only session slot; PING round-trip
  // proves the session is running before the second connect.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  FdTransport held(fd, fd, /*owns_fds=*/true);
  ASSERT_TRUE(held.WriteLine("PING"));
  std::string line;
  ASSERT_EQ(held.ReadLine(&line), Transport::ReadStatus::kLine);
  EXPECT_EQ(line, "OK pong");

  const auto rejected = TcpScript(server.port(), {"PING"});
  ASSERT_EQ(rejected.size(), 1u);
  EXPECT_EQ(rejected[0], "BUSY sessions=1");

  EXPECT_TRUE(held.WriteLine("QUIT"));
  ASSERT_EQ(held.ReadLine(&line), Transport::ReadStatus::kLine);
  EXPECT_EQ(line, "OK bye");
  server.Stop();
  accept_thread.join();
  EXPECT_GE(shared.metrics().Snapshot().rejected, 1u);
}

TEST(TcpServerTest, StopUnblocksIdleSessions) {
  // A session parked in a blocking read must not hang the drain: Stop()
  // shuts the socket down and Run() returns.
  ServerOptions options;
  CommunityServer shared(options);
  Executor executor(3);
  TcpServer server(shared, executor, options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  std::thread accept_thread([&] { server.Run(); });

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  FdTransport idle(fd, fd, /*owns_fds=*/true);
  ASSERT_TRUE(idle.WriteLine("PING"));
  std::string line;
  ASSERT_EQ(idle.ReadLine(&line), Transport::ReadStatus::kLine);

  server.Stop();        // session is idle in ReadLine at this point
  accept_thread.join();  // must not hang
  EXPECT_EQ(server.active_sessions(), 0u);
}

}  // namespace
}  // namespace locs::serve
