// Property-based differential tests: seeded random graphs from src/gen/,
// local solvers checked against the global baselines, and the telemetry
// layer checked against the legacy counters and against itself (timing
// on vs off).
//
// Three graph families (Erdős–Rényi, Barabási–Albert, planted partition)
// × three seeds × several query vertices × several k give well over 50
// (graph, query) combinations per solver pair. Every assertion is inside
// a SCOPED_TRACE carrying the case label (family, size, seed) and the
// query, so a failure prints the exact combination to replay.

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "core/global.h"
#include "core/kcore.h"
#include "core/local_csm.h"
#include "core/local_cst.h"
#include "core/validate.h"
#include "gen/barabasi.h"
#include "gen/erdos_renyi.h"
#include "gen/planted.h"
#include "graph/ordering.h"
#include "graph/subgraph.h"
#include "gtest/gtest.h"
#include "obs/recorder.h"

namespace locs {
namespace {

struct GraphCase {
  std::string label;
  Graph graph;
};

/// The seeded graph zoo. Sizes are small enough that the whole suite
/// stays sub-second but large enough that expansion, candidate
/// generation, and the global fallback all genuinely run.
std::vector<GraphCase> PropertyGraphs() {
  std::vector<GraphCase> cases;
  for (const uint64_t seed : {11u, 42u, 77u}) {
    const std::string s = "_s" + std::to_string(seed);
    cases.push_back(
        {"gnp_n120_p0.06" + s, gen::ErdosRenyiGnp(120, 0.06, seed)});
    cases.push_back(
        {"ba_n150_m3" + s, gen::BarabasiAlbert(150, 3, seed)});
    cases.push_back({"planted_4x30" + s,
                     gen::PlantedPartition(4, 30, 0.30, 0.02, seed).graph});
  }
  return cases;
}

/// A deterministic spread of query vertices across the id range.
std::vector<VertexId> QueryVertices(const Graph& graph) {
  const VertexId n = graph.NumVertices();
  return {0, n / 4, n / 2, static_cast<VertexId>(3 * (n / 4)),
          static_cast<VertexId>(n - 1)};
}

/// Asserts a found community is sound: contains v0, connected, induced
/// minimum degree at least k (CheckCommunity re-verifies all three).
void ExpectSoundCst(const Graph& graph, const SearchResult& result,
                    VertexId v0, uint32_t k) {
  ASSERT_TRUE(result.has_value());
  EXPECT_GE(result->min_degree, k);
  const std::string err =
      validate::CheckCommunity(graph, *result.community, {v0});
  EXPECT_TRUE(err.empty()) << err;
}

// ---------------------------------------------------------------------
// Local CST (naive / lg / li, ordered and unordered adjacency) vs the
// global peel: identical feasibility, and every positive answer sound.
// ---------------------------------------------------------------------
TEST(PropertyCst, LocalStrategiesAgreeWithGlobalFeasibility) {
  for (const GraphCase& c : PropertyGraphs()) {
    const GraphFacts facts = GraphFacts::Compute(c.graph);
    const OrderedAdjacency ordered(c.graph);
    LocalCstSolver with_order(c.graph, &ordered, &facts);
    LocalCstSolver without_order(c.graph, nullptr, &facts);
    for (const VertexId v0 : QueryVertices(c.graph)) {
      for (uint32_t k = 1; k <= 5; ++k) {
        SCOPED_TRACE(c.label + " v0=" + std::to_string(v0) +
                     " k=" + std::to_string(k));
        const SearchResult global = GlobalCst(c.graph, v0, k);
        ASSERT_FALSE(global.Interrupted());
        if (global.has_value()) ExpectSoundCst(c.graph, global, v0, k);
        for (const Strategy strategy :
             {Strategy::kNaive, Strategy::kLG, Strategy::kLI}) {
          for (LocalCstSolver* solver : {&with_order, &without_order}) {
            SCOPED_TRACE(std::string("strategy=") +
                         std::string(StrategyName(strategy)) +
                         (solver == &with_order ? " ordered" : " plain"));
            CstOptions options;
            options.strategy = strategy;
            const SearchResult local = solver->Solve(v0, k, options);
            ASSERT_FALSE(local.Interrupted());
            // Local CST is exact on existence (Theorem 2 / the G[C]
            // fallback): it finds an answer iff the global peel does.
            ASSERT_EQ(local.has_value(), global.has_value());
            if (local.has_value()) ExpectSoundCst(c.graph, local, v0, k);
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------
// Local CSM solutions 1 and 2 with the budget disabled (γ → −∞, the
// exhaustive regime of Theorem 6) vs the global optimum δ = core(v0).
// ---------------------------------------------------------------------
TEST(PropertyCsm, ExhaustiveLocalMatchesGlobalOptimum) {
  const double kNoBudget = -std::numeric_limits<double>::infinity();
  for (const GraphCase& c : PropertyGraphs()) {
    const GraphFacts facts = GraphFacts::Compute(c.graph);
    const OrderedAdjacency ordered(c.graph);
    LocalCsmSolver solver(c.graph, &ordered, &facts);
    const CoreDecomposition cores = ComputeCores(c.graph);
    for (const VertexId v0 : QueryVertices(c.graph)) {
      SCOPED_TRACE(c.label + " v0=" + std::to_string(v0));
      const SearchResult global = GlobalCsm(c.graph, v0);
      ASSERT_TRUE(global.has_value());
      ASSERT_EQ(global->min_degree, cores.core[v0]);

      CsmOptions csm1;
      csm1.candidate_rule = CsmCandidateRule::kFromVisited;
      csm1.gamma = kNoBudget;
      CsmOptions csm2;
      csm2.candidate_rule = CsmCandidateRule::kFromNaive;
      for (const CsmOptions& options : {csm1, csm2}) {
        SCOPED_TRACE(options.candidate_rule ==
                             CsmCandidateRule::kFromVisited
                         ? "csm1-exhaustive"
                         : "csm2");
        const SearchResult local = solver.Solve(v0, options);
        ASSERT_FALSE(local.Interrupted());
        ASSERT_TRUE(local.has_value());
        // Exact regimes must reach the optimal goodness, and the answer
        // must be a genuine community achieving it.
        EXPECT_EQ(local->min_degree, global->min_degree);
        const std::string err =
            validate::CheckCommunity(c.graph, *local.community, {v0});
        EXPECT_TRUE(err.empty()) << err;
      }

      // A finite γ budget may reduce quality but never exceeds the
      // optimum and never produces an unsound community.
      for (const double gamma : {0.0, 1.0}) {
        CsmOptions options;
        options.candidate_rule = CsmCandidateRule::kFromVisited;
        options.gamma = gamma;
        const SearchResult local = solver.Solve(v0, options);
        ASSERT_TRUE(local.has_value());
        EXPECT_LE(local->min_degree, global->min_degree);
        const std::string err =
            validate::CheckCommunity(c.graph, *local.community, {v0});
        EXPECT_TRUE(err.empty()) << err;
      }
    }
  }
}

// ---------------------------------------------------------------------
// Telemetry differential: the per-phase counters must (a) project onto
// the legacy QueryStats exactly, (b) be identical with timing on and
// off (the recorder must never change what the solver does), and (c)
// describe the answer (answer_size, fallback flag).
// ---------------------------------------------------------------------
void ExpectSameCounters(const obs::QueryTelemetry& a,
                        const obs::QueryTelemetry& b) {
  for (size_t i = 0; i < obs::kNumPhases; ++i) {
    const obs::PhaseStats& pa = a.phases[i];
    const obs::PhaseStats& pb = b.phases[i];
    SCOPED_TRACE("phase=" + std::string(obs::PhaseName(
                                static_cast<obs::Phase>(i))));
    EXPECT_EQ(pa.entered, pb.entered);
    EXPECT_EQ(pa.vertices_visited, pb.vertices_visited);
    EXPECT_EQ(pa.edges_scanned, pb.edges_scanned);
    EXPECT_EQ(pa.candidates_generated, pb.candidates_generated);
    EXPECT_EQ(pa.candidates_rejected, pb.candidates_rejected);
    EXPECT_EQ(pa.budget_spent, pb.budget_spent);
  }
  EXPECT_EQ(a.used_global_fallback, b.used_global_fallback);
  EXPECT_EQ(a.answer_size, b.answer_size);
}

TEST(PropertyTelemetry, CountersProjectExactlyAndTimingIsInert) {
  for (const GraphCase& c : PropertyGraphs()) {
    const GraphFacts facts = GraphFacts::Compute(c.graph);
    const OrderedAdjacency ordered(c.graph);
    LocalCstSolver cst(c.graph, &ordered, &facts);
    LocalCsmSolver csm(c.graph, &ordered, &facts);
    obs::AggregateRecorder aggregate;
    uint64_t expected_queries = 0;
    for (const VertexId v0 : QueryVertices(c.graph)) {
      for (uint32_t k = 1; k <= 4; ++k) {
        SCOPED_TRACE(c.label + " v0=" + std::to_string(v0) +
                     " k=" + std::to_string(k));
        // Pass 1: default null recorder (timing off).
        cst.set_recorder(nullptr);
        QueryStats stats;
        const SearchResult plain = cst.Solve(v0, k, {}, &stats);
        // (a) exact projection.
        EXPECT_EQ(plain.telemetry.TotalVisited(), stats.visited_vertices);
        EXPECT_EQ(plain.telemetry.TotalScanned(), stats.scanned_edges);
        EXPECT_EQ(plain.telemetry.used_global_fallback,
                  stats.used_global_fallback);
        EXPECT_EQ(plain.telemetry.answer_size, stats.answer_size);
        // (c) telemetry describes the answer.
        EXPECT_EQ(plain.telemetry.answer_size,
                  plain.has_value() ? plain->members.size() : 0u);
        EXPECT_EQ(plain.telemetry.TotalDurationNs(), 0u);

        // Pass 2: timing-enabled aggregate recorder attached.
        cst.set_recorder(&aggregate);
        ++expected_queries;
        const SearchResult timed = cst.Solve(v0, k);
        EXPECT_EQ(timed.has_value(), plain.has_value());
        if (timed.has_value()) {
          EXPECT_EQ(timed->members, plain->members);
          EXPECT_EQ(timed->min_degree, plain->min_degree);
        }
        // (b) identical counters whether or not the clock runs.
        ExpectSameCounters(timed.telemetry, plain.telemetry);
      }
      // Same invariants through the CSM solver.
      SCOPED_TRACE(c.label + " csm v0=" + std::to_string(v0));
      csm.set_recorder(nullptr);
      QueryStats stats;
      const SearchResult plain = csm.Solve(v0, {}, &stats);
      EXPECT_EQ(plain.telemetry.TotalVisited(), stats.visited_vertices);
      EXPECT_EQ(plain.telemetry.TotalScanned(), stats.scanned_edges);
      csm.set_recorder(&aggregate);
      ++expected_queries;
      const SearchResult timed = csm.Solve(v0, {});
      ASSERT_EQ(timed.has_value(), plain.has_value());
      if (timed.has_value()) {
        EXPECT_EQ(timed->members, plain->members);
      }
      ExpectSameCounters(timed.telemetry, plain.telemetry);
    }
    // The aggregate saw exactly the timed queries.
    const obs::AggregateRecorder::Totals totals = aggregate.Snapshot();
    EXPECT_EQ(totals.queries, expected_queries);
  }
}

}  // namespace
}  // namespace locs
