// Tests for the multi-vertex community search extension (core/multi.h):
// global and local solvers cross-validated against brute force and each
// other, single-vertex queries cross-validated against the paper solvers.

#include "core/multi.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/global.h"
#include "core/searcher.h"
#include "gen/classic.h"
#include "gen/erdos_renyi.h"
#include "graph/builder.h"
#include "graph/subgraph.h"
#include "test_util.h"
#include "util/rng.h"

namespace locs {
namespace {

using testing::ToSet;

/// Brute force: largest δ over connected subsets containing every query.
uint32_t BruteForceMultiGoodness(const Graph& graph,
                                 const std::vector<VertexId>& query) {
  const VertexId n = graph.NumVertices();
  uint32_t best = 0;
  bool found = false;
  for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
    bool has_all = true;
    for (VertexId q : query) has_all &= (mask >> q) & 1;
    if (!has_all) continue;
    std::vector<VertexId> members;
    for (VertexId v = 0; v < n; ++v) {
      if ((mask >> v) & 1) members.push_back(v);
    }
    if (!IsConnectedSubset(graph, members)) continue;
    found = true;
    best = std::max(best, MinDegreeOfInduced(graph, members));
  }
  return found ? best : 0;
}

bool ContainsAll(const std::vector<VertexId>& members,
                 const std::vector<VertexId>& query) {
  const auto set = ToSet(members);
  for (VertexId q : query) {
    if (set.count(q) == 0) return false;
  }
  return true;
}

class MultiSolverTest : public ::testing::Test {
 protected:
  SearchResult LocalCst(const Graph& g,
                        const std::vector<VertexId>& query, uint32_t k) {
    const GraphFacts facts = GraphFacts::Compute(g);
    const OrderedAdjacency ordered(g);
    LocalMultiSolver solver(g, &ordered, &facts);
    return solver.CstMulti(query, k);
  }

  Community LocalCsm(const Graph& g, const std::vector<VertexId>& query) {
    const GraphFacts facts = GraphFacts::Compute(g);
    const OrderedAdjacency ordered(g);
    LocalMultiSolver solver(g, &ordered, &facts);
    return *solver.CsmMulti(query);
  }
};

TEST_F(MultiSolverTest, SingleVertexMatchesPaperSolvers) {
  Graph g = gen::PaperFigure1();
  for (VertexId v0 = 0; v0 < g.NumVertices(); ++v0) {
    EXPECT_EQ(LocalCsm(g, {v0}).min_degree, GlobalCsm(g, v0)->min_degree)
        << "v0=" << v0;
    for (uint32_t k = 1; k <= 4; ++k) {
      EXPECT_EQ(LocalCst(g, {v0}, k).has_value(),
                GlobalCst(g, v0, k).has_value())
          << "v0=" << v0 << " k=" << k;
    }
  }
}

TEST_F(MultiSolverTest, PaperFigure1CrossCommunityPair) {
  // Query {a, j}: a's community (δ=3) and j's (δ=4) connect only through
  // the weak f-link, so the best community spanning both is the δ=2 body.
  Graph g = gen::PaperFigure1();
  auto v = [](char c) { return gen::Figure1Vertex(c); };
  const std::vector<VertexId> query = {v('a'), v('j')};
  const Community best = LocalCsm(g, query);
  EXPECT_EQ(best.min_degree, 2u);
  EXPECT_TRUE(ContainsAll(best.members, query));
  EXPECT_TRUE(IsConnectedSubset(g, best.members));
  // CST(3) spanning both must fail; CST(2) succeeds.
  EXPECT_FALSE(LocalCst(g, query, 3).has_value());
  EXPECT_FALSE(GlobalCstMulti(g, query, 3).has_value());
  const auto cst2 = LocalCst(g, query, 2);
  ASSERT_TRUE(cst2.has_value());
  EXPECT_TRUE(ContainsAll(cst2->members, query));
  EXPECT_GE(MinDegreeOfInduced(g, cst2->members), 2u);
}

TEST_F(MultiSolverTest, SameCliquePair) {
  Graph g = gen::PaperFigure1();
  auto v = [](char c) { return gen::Figure1Vertex(c); };
  const std::vector<VertexId> query = {v('g'), v('k')};
  const Community best = LocalCsm(g, query);
  EXPECT_EQ(best.min_degree, 4u);
  EXPECT_TRUE(ContainsAll(best.members, query));
}

TEST_F(MultiSolverTest, DisconnectedQueriesHaveNoCommunity) {
  GraphBuilder builder(6);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(3, 4);
  builder.AddEdge(4, 5);
  Graph g = builder.Build();
  EXPECT_FALSE(LocalCst(g, {0, 5}, 0).has_value());
  EXPECT_FALSE(GlobalCstMulti(g, {0, 5}, 0).has_value());
  const Community best = LocalCsm(g, {0, 5});
  EXPECT_EQ(best.min_degree, 0u);  // degenerate singleton fallback
}

TEST_F(MultiSolverTest, GlobalMatchesBruteForceOnTinyGraphs) {
  for (uint64_t seed : {4u, 14u, 24u}) {
    Graph g = gen::ErdosRenyiGnp(10, 0.35, seed);
    const std::vector<std::vector<VertexId>> query_sets = {
        {0, 1}, {2, 7}, {0, 4, 9}, {1, 3, 5, 8}};
    for (const auto& query : query_sets) {
      const uint32_t expect = BruteForceMultiGoodness(g, query);
      const Community global = *GlobalCsmMulti(g, query);
      const Community local = LocalCsm(g, query);
      if (expect == 0) {
        // Queries may be disconnected; both must degrade to 0.
        EXPECT_EQ(global.min_degree, 0u);
        EXPECT_EQ(local.min_degree, 0u);
        continue;
      }
      EXPECT_EQ(global.min_degree, expect) << "seed=" << seed;
      EXPECT_EQ(local.min_degree, expect) << "seed=" << seed;
      EXPECT_TRUE(ContainsAll(global.members, query));
      EXPECT_TRUE(ContainsAll(local.members, query));
      EXPECT_TRUE(IsConnectedSubset(g, global.members));
      EXPECT_TRUE(IsConnectedSubset(g, local.members));
    }
  }
}

TEST_F(MultiSolverTest, LocalAgreesWithGlobalOnRandomGraphs) {
  for (uint64_t seed : {31u, 41u, 51u}) {
    Graph g = gen::ErdosRenyiGnp(80, 0.09, seed);
    Rng rng(seed);
    for (int trial = 0; trial < 12; ++trial) {
      std::vector<VertexId> query;
      const size_t count = 2 + rng.Below(3);
      while (query.size() < count) {
        const auto v =
            static_cast<VertexId>(rng.Below(g.NumVertices()));
        if (std::find(query.begin(), query.end(), v) == query.end()) {
          query.push_back(v);
        }
      }
      for (uint32_t k = 1; k <= 5; ++k) {
        const auto local = LocalCst(g, query, k);
        const auto global = GlobalCstMulti(g, query, k);
        ASSERT_EQ(local.has_value(), global.has_value())
            << "seed=" << seed << " trial=" << trial << " k=" << k;
        if (local.has_value()) {
          EXPECT_TRUE(ContainsAll(local->members, query));
          EXPECT_TRUE(IsConnectedSubset(g, local->members));
          EXPECT_GE(MinDegreeOfInduced(g, local->members), k);
        }
      }
    }
  }
}

TEST_F(MultiSolverTest, BarbellSpanningPairNeedsBridge) {
  // Queries in the two K6 heads of a barbell: any spanning community must
  // include the bridge, capping δ at 1 (bridge vertices have degree 2 but
  // the path interior gives δ=... the spanning subgraph's min degree is 1
  // only if a head vertex dangles; the best is 2 via whole graph minus
  // nothing... verify against brute-force-free reasoning: the whole graph
  // has δ = 2 (bridge interior), so m* = 2.
  Graph g = gen::Barbell(6, 3);
  const std::vector<VertexId> query = {0, static_cast<VertexId>(
                                              g.NumVertices() - 1)};
  const Community best = LocalCsm(g, query);
  EXPECT_EQ(best.min_degree, 2u);
  EXPECT_TRUE(ContainsAll(best.members, query));
  const Community global = *GlobalCsmMulti(g, query);
  EXPECT_EQ(global.min_degree, 2u);
}

TEST_F(MultiSolverTest, FacadeEndToEnd) {
  CommunitySearcher searcher(gen::Barbell(5, 2));
  const std::vector<VertexId> query = {0, 11};
  const Community best = *searcher.CsmMulti(query);
  EXPECT_EQ(best.min_degree, 2u);
  EXPECT_TRUE(searcher.CstMulti(query, 2).has_value());
  EXPECT_FALSE(searcher.CstMulti(query, 3).has_value());
  EXPECT_TRUE(searcher.CstMulti({0, 1}, 4).has_value());
}

}  // namespace
}  // namespace locs
