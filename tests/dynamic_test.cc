// Tests for DynamicGraph: the degree-ordered adjacency must survive
// arbitrary edge insertions and deletions (the §4.3.2 dynamic-maintenance
// claim), verified by differential fuzzing against a reference edge set.

#include "graph/dynamic.h"

#include <gtest/gtest.h>

#include <set>

#include "gen/classic.h"
#include "gen/erdos_renyi.h"
#include "graph/builder.h"
#include "graph/invariants.h"
#include "util/rng.h"

namespace locs {
namespace {

TEST(DynamicGraphTest, EmptyAndBasicOps) {
  DynamicGraph g(4);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_TRUE(g.AddEdge(0, 1));
  EXPECT_FALSE(g.AddEdge(0, 1));  // duplicate
  EXPECT_FALSE(g.AddEdge(1, 0));  // duplicate, reversed
  EXPECT_FALSE(g.AddEdge(2, 2));  // self-loop
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_TRUE(g.RemoveEdge(1, 0));
  EXPECT_FALSE(g.RemoveEdge(0, 1));  // already gone
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_TRUE(g.CheckOrderInvariant());
}

TEST(DynamicGraphTest, FromGraphKeepsOrderInvariant) {
  Graph base = gen::ErdosRenyiGnp(80, 0.08, 3);
  DynamicGraph dynamic(base);
  EXPECT_EQ(dynamic.NumEdges(), base.NumEdges());
  EXPECT_TRUE(dynamic.CheckOrderInvariant());
  // Adjacency matches OrderedAdjacency of the same graph exactly.
  OrderedAdjacency ordered(base);
  for (VertexId v = 0; v < base.NumVertices(); ++v) {
    const auto expect = ordered.Neighbors(v);
    const auto& got = dynamic.Neighbors(v);
    ASSERT_EQ(got.size(), expect.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], expect[i]) << "v=" << v << " i=" << i;
    }
  }
}

TEST(DynamicGraphTest, DegreeChangeRepositionsInNeighborLists) {
  // Star center: every leaf list is just {center}. Adding leaf-leaf edges
  // changes leaf degrees, which must reorder the center's list.
  DynamicGraph g(5);
  for (VertexId v = 1; v < 5; ++v) g.AddEdge(0, v);
  // All leaves degree 1, sorted by id: 1,2,3,4.
  EXPECT_EQ(g.Neighbors(0), (std::vector<VertexId>{1, 2, 3, 4}));
  g.AddEdge(3, 4);  // 3 and 4 now degree 2: must move to the front.
  EXPECT_EQ(g.Neighbors(0), (std::vector<VertexId>{3, 4, 1, 2}));
  EXPECT_TRUE(g.CheckOrderInvariant());
  g.RemoveEdge(3, 4);
  EXPECT_EQ(g.Neighbors(0), (std::vector<VertexId>{1, 2, 3, 4}));
}

TEST(DynamicGraphTest, FreezeRoundTrip) {
  Graph base = gen::PaperFigure1();
  DynamicGraph dynamic(base);
  Graph frozen = dynamic.Freeze();
  EXPECT_EQ(frozen.offsets(), base.offsets());
  EXPECT_EQ(frozen.neighbors(), base.neighbors());
  EXPECT_EQ(ValidateGraph(frozen), "");
}

class DynamicFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DynamicFuzzTest, DifferentialAgainstReferenceEdgeSet) {
  constexpr VertexId kN = 30;
  Rng rng(GetParam());
  DynamicGraph dynamic(kN);
  std::set<std::pair<VertexId, VertexId>> reference;
  for (int op = 0; op < 600; ++op) {
    auto u = static_cast<VertexId>(rng.Below(kN));
    auto v = static_cast<VertexId>(rng.Below(kN));
    if (u > v) std::swap(u, v);
    const bool present = reference.count({u, v}) > 0;
    if (rng.Chance(0.6)) {
      const bool added = dynamic.AddEdge(u, v);
      EXPECT_EQ(added, !present && u != v) << "op=" << op;
      if (added) reference.emplace(u, v);
    } else {
      const bool removed = dynamic.RemoveEdge(u, v);
      EXPECT_EQ(removed, present) << "op=" << op;
      if (removed) reference.erase({u, v});
    }
    ASSERT_EQ(dynamic.NumEdges(), reference.size());
    if (op % 50 == 49) {
      ASSERT_TRUE(dynamic.CheckOrderInvariant()) << "op=" << op;
    }
  }
  ASSERT_TRUE(dynamic.CheckOrderInvariant());
  // Final state equals the reference graph.
  EdgeList edges(reference.begin(), reference.end());
  Graph expect = BuildGraph(kN, edges);
  Graph got = dynamic.Freeze();
  EXPECT_EQ(got.offsets(), expect.offsets());
  EXPECT_EQ(got.neighbors(), expect.neighbors());
  // And its ordering equals a from-scratch OrderedAdjacency.
  OrderedAdjacency ordered(expect);
  for (VertexId v = 0; v < kN; ++v) {
    const auto want = ordered.Neighbors(v);
    const auto& have = dynamic.Neighbors(v);
    ASSERT_EQ(have.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(have[i], want[i]) << "v=" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(DynamicGraphTest, EvolvingGraphQueriesStayCorrect) {
  // Simulate an evolving network: add edges in waves, freeze, and check a
  // community query against the frozen graph each wave.
  Rng rng(77);
  DynamicGraph dynamic(60);
  for (int wave = 0; wave < 5; ++wave) {
    for (int e = 0; e < 80; ++e) {
      dynamic.AddEdge(static_cast<VertexId>(rng.Below(60)),
                      static_cast<VertexId>(rng.Below(60)));
    }
    for (int e = 0; e < 20; ++e) {
      dynamic.RemoveEdge(static_cast<VertexId>(rng.Below(60)),
                         static_cast<VertexId>(rng.Below(60)));
    }
    ASSERT_TRUE(dynamic.CheckOrderInvariant());
    Graph snapshot = dynamic.Freeze();
    EXPECT_EQ(ValidateGraph(snapshot), "");
  }
}

}  // namespace
}  // namespace locs
