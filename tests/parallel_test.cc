// Tests for the parallel batch query runner: results must equal the
// sequential solver's, for any thread count.

#include "core/parallel.h"

#include <gtest/gtest.h>

#include "core/local_csm.h"
#include "gen/erdos_renyi.h"
#include "gen/lfr.h"
#include "test_util.h"

namespace locs {
namespace {

using testing::ToSet;

class ParallelBatchTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParallelBatchTest, CstBatchMatchesSequential) {
  Graph g = gen::ErdosRenyiGnp(200, 0.05, 7);
  const GraphFacts facts = GraphFacts::Compute(g);
  const OrderedAdjacency ordered(g);

  std::vector<VertexId> queries;
  for (VertexId v = 0; v < g.NumVertices(); v += 3) queries.push_back(v);

  BatchOptions options;
  options.num_threads = GetParam();
  const auto batch =
      SolveCstBatch(g, &ordered, &facts, queries, 3, options);

  LocalCstSolver solver(g, &ordered, &facts);
  ASSERT_EQ(batch.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const auto expect = solver.Solve(queries[i], 3);
    ASSERT_EQ(batch[i].has_value(), expect.has_value()) << "i=" << i;
    if (expect.has_value()) {
      EXPECT_EQ(ToSet(batch[i]->members), ToSet(expect->members));
    }
  }
}

TEST_P(ParallelBatchTest, CsmBatchMatchesSequential) {
  gen::LfrParams params;
  params.n = 400;
  params.min_degree = 3;
  params.max_degree = 20;
  params.min_community = 10;
  params.max_community = 50;
  params.seed = 5;
  Graph g = gen::Lfr(params).graph;
  const GraphFacts facts = GraphFacts::Compute(g);
  const OrderedAdjacency ordered(g);

  std::vector<VertexId> queries;
  for (VertexId v = 0; v < g.NumVertices(); v += 11) queries.push_back(v);

  const auto batch = SolveCsmBatch(g, &ordered, &facts, queries, {},
                                   GetParam());
  LocalCsmSolver solver(g, &ordered, &facts);
  ASSERT_EQ(batch.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(batch[i].min_degree,
              solver.Solve(queries[i])->min_degree)
        << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelBatchTest,
                         ::testing::Values(0u, 1u, 2u, 4u, 8u));

// The batch entry points must be deterministic and thread-count
// invariant: byte-identical member vectors (same order, same values) for
// num_threads in {1, 2, 8}, all equal to a serial loop over one reused
// solver.
TEST(ParallelBatchTest, CstBatchByteIdenticalAcrossThreadCounts) {
  Graph g = gen::ErdosRenyiGnp(250, 0.05, 23);
  const GraphFacts facts = GraphFacts::Compute(g);
  const OrderedAdjacency ordered(g);
  std::vector<VertexId> queries;
  for (VertexId v = 0; v < g.NumVertices(); ++v) queries.push_back(v);

  LocalCstSolver solver(g, &ordered, &facts);
  std::vector<std::optional<Community>> serial;
  for (VertexId v : queries) {
    serial.push_back(solver.Solve(v, 4).community);
  }

  for (unsigned threads : {1u, 2u, 8u}) {
    BatchOptions options;
    options.num_threads = threads;
    const auto batch = SolveCstBatch(g, &ordered, &facts, queries, 4,
                                     options);
    ASSERT_EQ(batch.size(), serial.size()) << "threads=" << threads;
    for (size_t i = 0; i < serial.size(); ++i) {
      ASSERT_EQ(batch[i].has_value(), serial[i].has_value())
          << "threads=" << threads << " i=" << i;
      if (!serial[i].has_value()) continue;
      EXPECT_EQ(batch[i]->members, serial[i]->members)
          << "threads=" << threads << " i=" << i;
      EXPECT_EQ(batch[i]->min_degree, serial[i]->min_degree);
    }
  }
}

TEST(ParallelBatchTest, CsmBatchByteIdenticalAcrossThreadCounts) {
  Graph g = gen::ErdosRenyiGnp(200, 0.06, 29);
  const GraphFacts facts = GraphFacts::Compute(g);
  const OrderedAdjacency ordered(g);
  std::vector<VertexId> queries;
  for (VertexId v = 0; v < g.NumVertices(); v += 2) queries.push_back(v);

  LocalCsmSolver solver(g, &ordered, &facts);
  std::vector<Community> serial;
  for (VertexId v : queries) serial.push_back(*solver.Solve(v));

  for (unsigned threads : {1u, 2u, 8u}) {
    const auto batch =
        SolveCsmBatch(g, &ordered, &facts, queries, {}, threads);
    ASSERT_EQ(batch.size(), serial.size()) << "threads=" << threads;
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(batch[i].members, serial[i].members)
          << "threads=" << threads << " i=" << i;
      EXPECT_EQ(batch[i].min_degree, serial[i].min_degree);
    }
  }
}

TEST(ParallelBatchTest, EmptyQueriesAndSingletons) {
  Graph g = gen::ErdosRenyiGnp(30, 0.2, 1);
  const GraphFacts facts = GraphFacts::Compute(g);
  EXPECT_TRUE(SolveCstBatch(g, nullptr, &facts, {}, 2).empty());
  const auto one = SolveCstBatch(g, nullptr, &facts, {5}, 2);
  ASSERT_EQ(one.size(), 1u);
  // More threads than work items must not crash or deadlock.
  BatchOptions options;
  options.num_threads = 16;
  const auto two = SolveCstBatch(g, nullptr, &facts, {1, 2}, 2, options);
  EXPECT_EQ(two.size(), 2u);
}

}  // namespace
}  // namespace locs
