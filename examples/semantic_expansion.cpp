// Semantic query expansion — the paper's fourth motivating application
// (§1): given a semantic link network over keywords, expand a query term
// with the other members of its "semantic community".
//
// The example builds a small hand-labeled sense network (a WordNet-style
// stand-in, cf. the paper's Figure 6(b) case study) and expands a few
// query words at different tightness thresholds.
//
//   ./build/examples/semantic_expansion [--word=image] [--k=3]

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/searcher.h"
#include "graph/builder.h"
#include "util/cli.h"

namespace {

using locs::VertexId;

/// A tiny labeled semantic network around photography, documents, and
/// music, with dense synonym clusters and sparse cross-topic links.
class SenseNetwork {
 public:
  SenseNetwork() {
    // Photography cluster.
    Clique({"image", "picture", "photo", "snapshot", "shot"});
    // Document cluster.
    Clique({"document", "file", "record", "report"});
    // Music cluster.
    Clique({"song", "track", "tune", "melody", "recording"});
    // Weak cross-topic bridges (polysemy).
    Link("shot", "record");       // a "shot" recorded
    Link("record", "recording");  // record/recording polysemy
    Link("file", "track");        // file a track
    Link("picture", "document");  // a picture document
  }

  locs::Graph Build() const {
    locs::GraphBuilder builder(static_cast<VertexId>(names_.size()));
    for (const auto& [u, v] : edges_) builder.AddEdge(u, v);
    return builder.Build();
  }

  VertexId Id(const std::string& name) {
    auto it = ids_.find(name);
    if (it != ids_.end()) return it->second;
    const auto id = static_cast<VertexId>(names_.size());
    ids_.emplace(name, id);
    names_.push_back(name);
    return id;
  }

  const std::string& Name(VertexId v) const { return names_[v]; }
  bool Has(const std::string& name) const { return ids_.count(name) > 0; }

 private:
  void Link(const std::string& a, const std::string& b) {
    edges_.emplace_back(Id(a), Id(b));
  }

  void Clique(const std::vector<std::string>& words) {
    for (size_t i = 0; i < words.size(); ++i) {
      for (size_t j = i + 1; j < words.size(); ++j) {
        Link(words[i], words[j]);
      }
    }
  }

  std::map<std::string, VertexId> ids_;
  std::vector<std::string> names_;
  std::vector<std::pair<VertexId, VertexId>> edges_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace locs;
  const CommandLine cli(argc, argv);
  const std::string word = cli.GetString("word", "image");
  const auto k = static_cast<uint32_t>(cli.GetInt("k", 3));

  SenseNetwork net;
  if (!net.Has(word)) {
    std::printf("unknown word '%s'; try image, document, song, record\n",
                word.c_str());
    return 1;
  }
  CommunitySearcher searcher(net.Build());
  const VertexId query = net.Id(word);

  std::printf("semantic network: %u senses, %lu links\n",
              searcher.graph().NumVertices(),
              static_cast<unsigned long>(searcher.graph().NumEdges()));

  const auto expansion = searcher.Cst(query, k);
  if (!expansion.has_value()) {
    std::printf("no semantic community of tightness %u around '%s'\n", k,
                word.c_str());
    return 0;
  }
  std::printf("expanding '%s' at tightness k=%u:", word.c_str(), k);
  for (VertexId v : expansion->members) {
    if (v != query) std::printf(" %s", net.Name(v).c_str());
  }
  std::printf("\n");

  // The best community, regardless of threshold.
  const Community best = *searcher.Csm(query);
  std::printf("tightest community around '%s' (δ=%u):", word.c_str(),
              best.min_degree);
  for (VertexId v : best.members) {
    if (v != query) std::printf(" %s", net.Name(v).c_str());
  }
  std::printf("\nBridges like record/recording stay outside: the minimum-"
              "degree measure rejects weakly linked senses (the paper's "
              "Example 1 rationale).\n");
  return 0;
}
