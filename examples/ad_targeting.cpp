// Advertising on social networks — the paper's second motivating
// application (§1): users in one community share interests, so an
// advertiser seeds a campaign with known-interested users and pushes the
// ad to their communities.
//
// This example demonstrates the batch/throughput side of the library:
// a core-hierarchy index for instant community retrieval, a parallel batch
// of local CSM queries for comparison, and multi-vertex search to find the
// community spanned by several seed users at once.
//
//   ./build/examples/ad_targeting [--n=30000] [--seeds=8] [--threads=4]

#include <cstdio>
#include <set>

#include "core/core_index.h"
#include "core/parallel.h"
#include "core/searcher.h"
#include "gen/lfr.h"
#include "graph/traversal.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace locs;
  const CommandLine cli(argc, argv);
  const auto n = static_cast<VertexId>(cli.GetInt("n", 30000));
  const auto num_seeds = static_cast<size_t>(cli.GetInt("seeds", 8));
  const auto threads = static_cast<unsigned>(cli.GetInt("threads", 4));

  gen::LfrParams params;
  params.n = n;
  params.mu = 0.12;
  params.min_degree = 5;
  params.max_degree = 80;
  params.min_community = 15;
  params.max_community = 120;
  params.seed = 99;
  const MappedSubgraph net = ExtractLargestComponent(gen::Lfr(params).graph);
  const Graph& g = net.graph;
  std::printf("social network: %u users, %lu edges\n", g.NumVertices(),
              static_cast<unsigned long>(g.NumEdges()));

  // Seed users: the advertiser's known clickers — pick spread-out,
  // well-connected users.
  Rng rng(7);
  std::vector<VertexId> seeds;
  while (seeds.size() < num_seeds) {
    const auto v = static_cast<VertexId>(rng.Below(g.NumVertices()));
    if (g.Degree(v) >= 12) seeds.push_back(v);
  }

  // --- Option A: per-seed communities via a parallel batch -------------
  const GraphFacts facts = GraphFacts::Compute(g);
  const OrderedAdjacency ordered(g);
  WallTimer batch_timer;
  const auto communities =
      SolveCsmBatch(g, &ordered, &facts, seeds, {}, threads);
  std::printf("\nper-seed communities (%u threads, %.1fms total):\n",
              threads, batch_timer.Millis());
  std::set<VertexId> audience;
  for (size_t i = 0; i < seeds.size(); ++i) {
    std::printf("  seed %-6u -> community of %5zu users (δ=%u)\n",
                seeds[i], communities[i].members.size(),
                communities[i].min_degree);
    audience.insert(communities[i].members.begin(),
                    communities[i].members.end());
  }
  std::printf("combined audience: %zu users\n", audience.size());

  // --- Option B: one shared community spanning all seeds ----------------
  CommunitySearcher searcher{Graph(g)};
  WallTimer multi_timer;
  const Community shared = *searcher.CsmMulti(seeds);
  std::printf("\ncommunity spanning all %zu seeds: %zu users, δ=%u "
              "(%.1fms)\n",
              seeds.size(), shared.members.size(), shared.min_degree,
              multi_timer.Millis());

  // --- Option C: index for campaign-scale retrieval ---------------------
  WallTimer index_timer;
  const CoreIndex index(g);
  const double build_ms = index_timer.Millis();
  WallTimer query_timer;
  size_t total = 0;
  for (VertexId seed : seeds) {
    total += index.Csm(seed).members.size();
  }
  std::printf("\ncore index: built in %.1fms; %zu community retrievals in "
              "%.2fms (maximal communities, %zu users total)\n",
              build_ms, seeds.size(), query_timer.Millis(), total);
  std::printf("\nRule of thumb: batch local search for few seeds, the "
              "index when the campaign issues thousands of retrievals.\n");
  return 0;
}
