// Evolving-network monitoring: friendships form and dissolve, and the
// system tracks how strong each user's best community is — in real time,
// without recomputing anything from scratch.
//
// Uses the two dynamic substrates:
//   - DynamicCores keeps every m*(G, v) (= core number, Lemma 4 of the
//     paper) current under each edge update;
//   - DynamicGraph keeps the §4.3.2 degree-ordered adjacency current, so
//     a full community (not just its strength) can be fetched on demand
//     by freezing a snapshot and running local search.
//
//   ./build/examples/evolving_network [--days=30]

#include <cstdio>

#include "core/dynamic_cores.h"
#include "core/searcher.h"
#include "gen/lfr.h"
#include "graph/dynamic.h"
#include "graph/traversal.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace locs;
  const CommandLine cli(argc, argv);
  const auto days = static_cast<int>(cli.GetInt("days", 30));

  // Day 0: an existing social network.
  gen::LfrParams params;
  params.n = 20000;
  params.mu = 0.15;
  params.min_degree = 4;
  params.max_degree = 60;
  params.min_community = 12;
  params.max_community = 90;
  params.seed = 2026;
  const Graph base = ExtractLargestComponent(gen::Lfr(params).graph).graph;
  std::printf("day 0: %u users, %lu friendships\n", base.NumVertices(),
              static_cast<unsigned long>(base.NumEdges()));

  DynamicCores cores(base);
  DynamicGraph adjacency(base);
  const VertexId watched = 4242 % base.NumVertices();
  std::printf("watching user %u: community strength m* = %u\n\n", watched,
              cores.CoreNumber(watched));

  Rng rng(17);
  WallTimer total;
  uint64_t updates = 0;
  for (int day = 1; day <= days; ++day) {
    // Each day: new friendships form (biased toward the watched user's
    // neighborhood so the demo shows movement) and a few dissolve.
    const uint32_t before = cores.CoreNumber(watched);
    for (int e = 0; e < 40; ++e) {
      VertexId u;
      VertexId v;
      if (e % 4 == 0 && cores.Degree(watched) > 0) {
        // Triadic closure around the watched user.
        const auto& friends = adjacency.Neighbors(watched);
        u = friends[rng.Below(friends.size())];
        v = rng.Chance(0.5)
                ? watched
                : friends[rng.Below(friends.size())];
      } else {
        u = static_cast<VertexId>(rng.Below(cores.NumVertices()));
        v = static_cast<VertexId>(rng.Below(cores.NumVertices()));
      }
      if (u == v) continue;
      if (cores.AddEdge(u, v)) {
        adjacency.AddEdge(u, v);
        ++updates;
      }
    }
    for (int e = 0; e < 10; ++e) {
      const auto u = static_cast<VertexId>(rng.Below(cores.NumVertices()));
      if (cores.Degree(u) == 0) continue;
      const VertexId v =
          adjacency.Neighbors(u)[rng.Below(adjacency.Neighbors(u).size())];
      if (cores.RemoveEdge(u, v)) {
        adjacency.RemoveEdge(u, v);
        ++updates;
      }
    }
    const uint32_t after = cores.CoreNumber(watched);
    if (after != before) {
      std::printf("day %2d: user %u's community strength %u -> %u\n", day,
                  watched, before, after);
    }
  }
  std::printf("\nprocessed %lu edge updates in %.1fms "
              "(%.1f µs per update, cores always current)\n",
              static_cast<unsigned long>(updates), total.Millis(),
              total.Millis() * 1000.0 / static_cast<double>(updates));

  // On demand: materialize the watched user's full community right now.
  CommunitySearcher searcher(adjacency.Freeze());
  WallTimer query;
  const Community community = *searcher.Csm(watched);
  std::printf("current best community of user %u: %zu members, δ=%u "
              "(snapshot+query %.1fms)\n",
              watched, community.members.size(), community.min_degree,
              query.Millis());
  return 0;
}
