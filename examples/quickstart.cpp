// Quickstart: build a graph, run the two community-search queries the
// library answers (CST and CSM), and inspect the results.
//
//   cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "core/searcher.h"
#include "gen/classic.h"

int main() {
  using namespace locs;

  // The running example graph from the paper (Figure 1): vertices a..n
  // mapped to ids 0..13.
  Graph graph = gen::PaperFigure1();
  std::printf("graph: %u vertices, %lu edges\n", graph.NumVertices(),
              static_cast<unsigned long>(graph.NumEdges()));

  // A CommunitySearcher owns the graph plus all precomputations (graph
  // facts for the analytic bounds, degree-ordered adjacency for fast
  // expansion).
  CommunitySearcher searcher(std::move(graph));

  const VertexId a = gen::Figure1Vertex('a');

  // --- CSM: the best community for a vertex ------------------------------
  // Finds a connected subgraph containing `a` whose minimum internal
  // degree is maximal.
  const Community best = *searcher.Csm(a);
  std::printf("\nbest community for 'a' (min degree %u):", best.min_degree);
  for (VertexId v : best.members) {
    std::printf(" %s", gen::Figure1Label(v).c_str());
  }
  std::printf("\n");

  // --- CST(k): a community meeting a threshold ---------------------------
  // Finds any connected subgraph containing `a` with minimum degree >= k,
  // or reports that none exists.
  for (uint32_t k = 1; k <= 4; ++k) {
    const auto community = searcher.Cst(a, k);
    if (!community.has_value()) {
      std::printf("CST(%u) for 'a': no community\n", k);
      continue;
    }
    std::printf("CST(%u) for 'a' (δ=%u, %zu members):", k,
                community->min_degree, community->members.size());
    for (VertexId v : community->members) {
      std::printf(" %s", gen::Figure1Label(v).c_str());
    }
    std::printf("\n");
  }

  // --- Query statistics ---------------------------------------------------
  QueryStats stats;
  searcher.Cst(a, 3, {}, &stats);
  std::printf("\nCST(3) visited %lu vertices and scanned %lu adjacency "
              "entries (graph has %lu); fallback used: %s\n",
              static_cast<unsigned long>(stats.visited_vertices),
              static_cast<unsigned long>(stats.scanned_edges),
              static_cast<unsigned long>(2 * searcher.graph().NumEdges()),
              stats.used_global_fallback ? "yes" : "no");
  return 0;
}
