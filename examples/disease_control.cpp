// Infectious disease control — the paper's third motivating application
// (§1 and §2.1): given a contact network and an infected person, find the
// people to monitor. The threshold k tunes the scope: a highly contagious
// disease uses a small k (casual contacts matter), a less contagious one
// uses a large k (only close contact circles matter).
//
//   ./build/examples/disease_control [--n=15000] [--patient=4242]

#include <cstdio>

#include "core/searcher.h"
#include "gen/lfr.h"
#include "graph/traversal.h"
#include "util/cli.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace locs;
  const CommandLine cli(argc, argv);
  const auto n = static_cast<VertexId>(cli.GetInt("n", 15000));

  // Contact network: households/workplaces appear as dense pockets.
  gen::LfrParams params;
  params.n = n;
  params.mu = 0.25;
  params.min_degree = 3;
  params.max_degree = 40;
  params.min_community = 8;
  params.max_community = 50;
  params.seed = 11;
  const MappedSubgraph component =
      ExtractLargestComponent(gen::Lfr(params).graph);
  CommunitySearcher searcher(Graph(component.graph));
  std::printf("contact network: %u people, %lu contacts\n",
              searcher.graph().NumVertices(),
              static_cast<unsigned long>(searcher.graph().NumEdges()));

  auto patient = static_cast<VertexId>(
      cli.GetInt("patient", 4242) % searcher.graph().NumVertices());
  // Make sure the patient has some contacts to reason about.
  while (searcher.graph().Degree(patient) < 3) {
    patient = (patient + 1) % searcher.graph().NumVertices();
  }
  std::printf("patient zero: person %u with %u direct contacts\n\n",
              patient, searcher.graph().Degree(patient));

  std::printf("%-14s %-12s %-10s %-14s %s\n", "contagiousness", "k",
              "monitored", "query ms", "note");
  struct Scenario {
    const char* label;
    uint32_t k;
  };
  const Scenario scenarios[] = {
      {"very high", 1}, {"high", 2}, {"moderate", 3}, {"low", 5},
      {"very low", 8}};
  for (const Scenario& scenario : scenarios) {
    WallTimer timer;
    const auto cohort = searcher.Cst(patient, scenario.k);
    const double ms = timer.Millis();
    if (!cohort.has_value()) {
      std::printf("%-14s %-12u %-10s %-14.2f %s\n", scenario.label,
                  scenario.k, "-", ms,
                  "no k-connected circle around the patient");
      continue;
    }
    std::printf("%-14s %-12u %-10zu %-14.2f δ=%u\n", scenario.label,
                scenario.k, cohort->members.size(), ms,
                cohort->min_degree);
  }

  std::printf("\nRaising k focuses monitoring on tighter contact circles "
              "(the paper's CST motivation); the search touches only the "
              "patient's neighborhood, not the whole network.\n");
  return 0;
}
