// Friend recommendation — the paper's first motivating application (§1).
//
// Given a social network and a user u, recommend the members of u's best
// community that are not yet u's friends. Local CSM finds that community
// by exploring only u's neighborhood, so the recommendation is interactive
// even on large networks.
//
//   ./build/examples/friend_recommendation [--n=20000] [--user=123]

#include <cstdio>
#include <set>

#include "core/searcher.h"
#include "gen/lfr.h"
#include "graph/traversal.h"
#include "util/cli.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace locs;
  const CommandLine cli(argc, argv);
  const auto n = static_cast<VertexId>(cli.GetInt("n", 20000));

  // A synthetic social network with planted friend circles.
  gen::LfrParams params;
  params.n = n;
  params.mu = 0.15;
  params.min_degree = 4;
  params.max_degree = 60;
  params.min_community = 10;
  params.max_community = 80;
  params.seed = 7;
  WallTimer gen_timer;
  const gen::LfrGraph network = gen::Lfr(params);
  const MappedSubgraph main_component =
      ExtractLargestComponent(network.graph);
  std::printf("social network: %u users, %lu friendships (built in %.0fms)\n",
              main_component.graph.NumVertices(),
              static_cast<unsigned long>(main_component.graph.NumEdges()),
              gen_timer.Millis());

  CommunitySearcher searcher(Graph(main_component.graph));
  // Default to a well-connected user: low-degree users' maximal
  // communities degenerate to the whole low-k core (the paper's Figure 12
  // observation), which makes for poor recommendations.
  VertexId user;
  if (cli.Has("user")) {
    user = static_cast<VertexId>(cli.GetInt("user", 0) %
                                 searcher.graph().NumVertices());
  } else {
    user = 0;
    for (VertexId v = 0; v < searcher.graph().NumVertices(); ++v) {
      if (searcher.graph().Degree(v) > searcher.graph().Degree(user)) {
        user = v;
      }
    }
  }

  WallTimer query_timer;
  QueryStats stats;
  const Community circle = *searcher.Csm(user, {}, &stats);
  const double ms = query_timer.Millis();

  const auto friends = searcher.graph().Neighbors(user);
  const std::set<VertexId> friend_set(friends.begin(), friends.end());
  std::printf("\nuser %u has %zu friends; best community has %zu members "
              "(min degree %u), found in %.2fms visiting %lu vertices\n",
              user, friend_set.size(), circle.members.size(),
              circle.min_degree, ms,
              static_cast<unsigned long>(stats.visited_vertices));

  std::printf("recommendations (community members who are not friends "
              "yet):");
  int shown = 0;
  for (VertexId v : circle.members) {
    if (v == user || friend_set.count(v) > 0) continue;
    std::printf(" %u", v);
    if (++shown == 15) {
      std::printf(" ...");
      break;
    }
  }
  if (shown == 0) std::printf(" (none — the community is the friend set)");
  std::printf("\n");
  return 0;
}
